open Rdb_data
open Rdb_engine
module Goal = Rdb_core.Goal
module Retrieval = Rdb_core.Retrieval
module Session = Rdb_core.Session

type result = {
  columns : string list;
  rows : Value.t list list;
  summaries : (string * Retrieval.summary) list;
  message : string option;
}

exception Execution_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Execution_error s)) fmt

(* A retrieval that ends in anything but [Completed] delivered a
   truncated row set; silently returning it would corrupt query
   results, so surface the structured status as an executor error. *)
let check_status (summary : Retrieval.summary) =
  match summary.Retrieval.status with
  | Retrieval.Completed -> ()
  | s -> fail "retrieval %s" (Retrieval.status_to_string s)

let operand_to_pred = function
  | Ast.Lit v -> Predicate.Const v
  | Ast.Host h -> Predicate.Param h

let comparison_to_pred = function
  | Ast.Eq -> Predicate.Eq
  | Ast.Ne -> Predicate.Ne
  | Ast.Lt -> Predicate.Lt
  | Ast.Le -> Predicate.Le
  | Ast.Gt -> Predicate.Gt
  | Ast.Ge -> Predicate.Ge

let agg_columns = function
  | Ast.Count_star -> []
  | Ast.Count c | Ast.Sum c | Ast.Avg c | Ast.Min c | Ast.Max c -> [ c ]

let projection_columns db (sel : Ast.select) =
  match sel.Ast.projection with
  | Ast.Star ->
      let table = Database.table db sel.Ast.table in
      List.map (fun c -> c.Schema.name) (Schema.columns (Table.schema table))
  | Ast.Cols cs -> cs
  | Ast.Aggs aggs -> List.sort_uniq compare (List.concat_map (fun (a, _) -> agg_columns a) aggs)

(* The node immediately controlling this select's retrieval (§4). *)
let goal_context_of_select db (sel : Ast.select) ~outer =
  match sel.Ast.limit with
  | Some n -> Some (Goal.Limit n)
  | None ->
      if sel.Ast.distinct then Some Goal.Sort
      else begin
        match sel.Ast.projection with
        | Ast.Aggs _ -> Some Goal.Aggregate
        | Ast.Star | Ast.Cols _ ->
            if sel.Ast.order_by <> [] then begin
              (* A SORT node exists only if no index delivers the
                 order. *)
              let table = Database.table db sel.Ast.table in
              let provided =
                List.exists
                  (fun idx -> Table.index_provides_order idx ~order:sel.Ast.order_by)
                  (Table.indexes table)
              in
              if provided then outer else Some Goal.Sort
            end
            else outer
      end

(* Resolve subqueries innermost-first, turning the condition into an
   engine predicate.  Summaries accumulate in execution order. *)
let rec cond_to_predicate db env config summaries cond =
  match cond with
  | Ast.C_true -> Predicate.True
  | Ast.C_false -> Predicate.False
  | Ast.C_cmp (c, op, o) -> Predicate.Cmp (c, comparison_to_pred op, operand_to_pred o)
  | Ast.C_cmp_col (a, op, b) -> Predicate.Cmp_col (a, comparison_to_pred op, b)
  | Ast.C_between (c, a, b) -> Predicate.Between (c, operand_to_pred a, operand_to_pred b)
  | Ast.C_in_list (c, os) -> Predicate.In_list (c, List.map operand_to_pred os)
  | Ast.C_like (c, p) -> Predicate.Like (c, p)
  | Ast.C_is_null c -> Predicate.Is_null c
  | Ast.C_is_not_null c -> Predicate.Is_not_null c
  | Ast.C_and cs -> Predicate.And (List.map (cond_to_predicate db env config summaries) cs)
  | Ast.C_or cs -> Predicate.Or (List.map (cond_to_predicate db env config summaries) cs)
  | Ast.C_not c -> Predicate.Not (cond_to_predicate db env config summaries c)
  | Ast.C_in_select (c, sub) ->
      let values = run_scalar_subquery db env config summaries sub ~outer:None () in
      Predicate.In_list (c, List.map (fun v -> Predicate.Const v) values)
  | Ast.C_exists sub ->
      (* One row is enough; the LIMIT is imposed at execution so the
         goal context is still the controlling EXISTS node (§4). *)
      let values =
        run_scalar_subquery db env config summaries sub ~outer:(Some Goal.Exists)
          ~force_limit:1 ()
      in
      if values <> [] then Predicate.True else Predicate.False

and run_scalar_subquery db env config summaries sub ~outer ?force_limit () =
  let res = run_select db env config summaries sub ~outer ?force_limit () in
  let values =
    List.map
      (function
        | [ v ] -> v
        | row -> fail "subquery must produce one column, got %d" (List.length row))
      res
  in
  values

(* Run a select, returning projected value rows; pushes its retrieval
   summary onto [summaries]. *)
and run_select db env config summaries (sel : Ast.select) ~outer ?force_limit () =
  match sel.Ast.joined with
  | Some b_name -> run_join db env config summaries sel b_name ?force_limit ()
  | None -> run_single db env config summaries sel ~outer ?force_limit ()

and run_single db env config summaries (sel : Ast.select) ~outer ?force_limit () =
  let table =
    match Database.find_table db sel.Ast.table with
    | Some t -> t
    | None -> fail "no such table: %s" sel.Ast.table
  in
  let schema = Table.schema table in
  let restriction =
    match sel.Ast.where with
    | None -> Predicate.True
    | Some c -> cond_to_predicate db env config summaries c
  in
  let context = goal_context_of_select db sel ~outer in
  let proj_cols = projection_columns db sel in
  List.iter
    (fun c -> if not (Schema.mem schema c) then fail "unknown column %s" c)
    (proj_cols @ sel.Ast.order_by @ Predicate.columns restriction);
  let needs_post = sel.Ast.distinct || (match sel.Ast.projection with Ast.Aggs _ -> true | _ -> false) in
  let own_limit = if needs_post then None else sel.Ast.limit in
  let push_limit =
    match (own_limit, force_limit) with
    | Some a, Some b -> Some (Int.min a b)
    | Some a, None -> Some a
    | None, l -> l
  in
  let req =
    Retrieval.request ~env ?explicit_goal:sel.Ast.optimize ?context
      ~order_by:sel.Ast.order_by ~projection:proj_cols restriction
  in
  let rows, summary = Retrieval.run ?config ?limit:push_limit table req in
  summaries := !summaries @ [ (sel.Ast.table, summary) ];
  check_status summary;
  let project row = List.map (fun c -> Row.get row (Schema.index_of schema c)) proj_cols in
  match sel.Ast.projection with
  | Ast.Aggs aggs ->
      let values col = List.map (fun r -> Row.get r (Schema.index_of schema col)) rows in
      let non_null col = List.filter (fun v -> not (Value.is_null v)) (values col) in
      let numeric col =
        List.filter_map Value.as_float (non_null col)
      in
      let compute = function
        | Ast.Count_star -> Value.int (List.length rows)
        | Ast.Count c -> Value.int (List.length (non_null c))
        | Ast.Sum c ->
            let xs = numeric c in
            if xs = [] then Value.Null
            else begin
              let s = List.fold_left ( +. ) 0.0 xs in
              if Float.is_integer s then Value.int (int_of_float s) else Value.float s
            end
        | Ast.Avg c ->
            let xs = numeric c in
            if xs = [] then Value.Null
            else Value.float (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))
        | Ast.Min c -> (
            match non_null c with
            | [] -> Value.Null
            | v :: rest -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest)
        | Ast.Max c -> (
            match non_null c with
            | [] -> Value.Null
            | v :: rest -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest)
      in
      [ List.map (fun (a, _) -> compute a) aggs ]
  | Ast.Star | Ast.Cols _ ->
      let projected = List.map project rows in
      let projected =
        if sel.Ast.distinct then
          List.sort_uniq (fun a b -> List.compare Value.compare a b) projected
        else projected
      in
      let projected =
        match (needs_post, sel.Ast.limit) with
        | true, Some n -> List.filteri (fun i _ -> i < n) projected
        | _ -> projected
      in
      projected


(* --- two-table joins ------------------------------------------------- *)

(* Rename every column reference of a bound single-table predicate. *)
and rename_predicate f pred =
  let open Predicate in
  let rec go = function
    | (True | False) as t -> t
    | Cmp (c, op, o) -> Cmp (f c, op, o)
    | Cmp_col (a, op, b) -> Cmp_col (f a, op, f b)
    | Between (c, a, b) -> Between (f c, a, b)
    | In_list (c, os) -> In_list (f c, os)
    | Is_null c -> Is_null (f c)
    | Is_not_null c -> Is_not_null (f c)
    | Like (c, p) -> Like (f c, p)
    | And ts -> And (List.map go ts)
    | Or ts -> Or (List.map go ts)
    | Not x -> Not (go x)
  in
  go pred

(* A two-table inner join executed as the paper's "iterative execution
   of query subplans" (§1): the outer table is retrieved once, and the
   inner table is probed with a *parameterized* retrieval per distinct
   join value — each probe is a fresh dynamic decision (per-iteration
   strategy choice, empty-range cancellation, adaptive index
   pre-ordering).  Probes are memoized per join value. *)
and run_join db env config summaries (sel : Ast.select) b_name ?force_limit () =
  let a_name = sel.Ast.table in
  let ta =
    match Database.find_table db a_name with
    | Some t -> t
    | None -> fail "no such table: %s" a_name
  in
  let tb =
    match Database.find_table db b_name with
    | Some t -> t
    | None -> fail "no such table: %s" b_name
  in
  if a_name = b_name then fail "self-joins need distinct table names";
  let sa = Table.schema ta and sb = Table.schema tb in
  (* Canonicalize a (possibly qualified) column to "TABLE.COL". *)
  let canon col =
    match String.index_opt col '.' with
    | Some i ->
        let t = String.sub col 0 i and c = String.sub col (i + 1) (String.length col - i - 1) in
        if t = a_name && Schema.mem sa c then a_name ^ "." ^ c
        else if t = b_name && Schema.mem sb c then b_name ^ "." ^ c
        else fail "unknown column %s" col
    | None -> (
        match (Schema.mem sa col, Schema.mem sb col) with
        | true, false -> a_name ^ "." ^ col
        | false, true -> b_name ^ "." ^ col
        | true, true -> fail "ambiguous column %s (qualify it)" col
        | false, false -> fail "unknown column %s" col)
  in
  let strip prefix col =
    let p = prefix ^ "." in
    let lp = String.length p in
    if String.length col > lp && String.sub col 0 lp = p then
      String.sub col lp (String.length col - lp)
    else col
  in
  let side col =
    if String.length col > String.length a_name && String.sub col 0 (String.length a_name + 1) = a_name ^ "." then `A
    else `B
  in
  (* Build the canonical predicate (subqueries resolve first). *)
  let restriction =
    match sel.Ast.where with
    | None -> Predicate.True
    | Some c ->
        rename_predicate canon
          (Predicate.bind (cond_to_predicate db env config summaries c) env)
  in
  let restriction = Predicate.simplify restriction in
  if restriction = Predicate.False then
    finalize_join db sel ~canon ~sa ~sb ~a_name ~b_name [] ?force_limit ()
  else begin
    let conjuncts =
      match restriction with Predicate.And ts -> ts | Predicate.True -> [] | t -> [ t ]
    in
    let join_cond = ref None in
    let outer = ref [] and inner = ref [] and post = ref [] in
    List.iter
      (fun conj ->
        let sides = List.sort_uniq compare (List.map side (Predicate.columns conj)) in
        match (conj, sides) with
        | _, [ `A ] -> outer := conj :: !outer
        | _, [ `B ] -> inner := conj :: !inner
        | Predicate.Cmp_col (x, Predicate.Eq, y), [ `A; `B ] when !join_cond = None ->
            let a_col, b_col = if side x = `A then (x, y) else (y, x) in
            join_cond := Some (strip a_name a_col, strip b_name b_col)
        | _, [] -> outer := conj :: !outer
        | _ -> post := conj :: !post)
      conjuncts;
    let outer_pred =
      Predicate.simplify (Predicate.And (List.rev_map (rename_predicate (strip a_name)) !outer))
    in
    let inner_pred =
      Predicate.simplify (Predicate.And (List.rev_map (rename_predicate (strip b_name)) !inner))
    in
    let post_pred = Predicate.simplify (Predicate.And (List.rev !post)) in
    (* Outer retrieval: one dynamic run. *)
    let outer_rows, outer_summary =
      Retrieval.run ?config ta (Retrieval.request ~env outer_pred)
    in
    summaries := !summaries @ [ (a_name, outer_summary) ];
    check_status outer_summary;
    (* Inner probes: one parameterized retrieval per distinct join
       value, memoized. *)
    let probe_cost = ref 0.0 and probe_rows = ref 0 and probes = ref 0 and hits = ref 0 in
    let last_tactic = ref Retrieval.Static_tscan and last_goal = ref Rdb_core.Goal.Total_time in
    let last_policy = ref (Retrieval.policy_description ?config Retrieval.Static_tscan) in
    let cache : (Value.t, Row.t list) Hashtbl.t = Hashtbl.create 64 in
    let probe v =
      match Hashtbl.find_opt cache v with
      | Some rows ->
          incr hits;
          rows
      | None ->
          incr probes;
          let pred =
            match !join_cond with
            | Some (_, b_col) ->
                Predicate.simplify
                  (Predicate.And [ inner_pred; Predicate.Cmp (b_col, Predicate.Eq, Predicate.Const v) ])
            | None -> inner_pred
          in
          let rows, s = Retrieval.run ?config tb (Retrieval.request ~env pred) in
          check_status s;
          probe_cost := !probe_cost +. s.Retrieval.total_cost;
          probe_rows := !probe_rows + s.Retrieval.rows_delivered;
          last_tactic := s.Retrieval.tactic;
          last_goal := s.Retrieval.goal;
          last_policy := s.Retrieval.policy;
          Hashtbl.replace cache v rows;
          rows
    in
    let combined = ref [] in
    List.iter
      (fun (a_row : Row.t) ->
        let join_value =
          match !join_cond with
          | Some (a_col, _) -> Some (Row.get a_row (Schema.index_of sa a_col))
          | None -> None
        in
        match join_value with
        | Some Value.Null -> () (* NULL never joins *)
        | Some v ->
            List.iter
              (fun b_row -> combined := Array.append a_row b_row :: !combined)
              (probe v)
        | None ->
            List.iter
              (fun b_row -> combined := Array.append a_row b_row :: !combined)
              (probe Value.Null))
      outer_rows;
    let combined = List.rev !combined in
    (* Synthesize an aggregate summary for the probe side. *)
    let probe_summary =
      {
        Retrieval.rows_delivered = !probe_rows;
        total_cost = !probe_cost;
        cost_to_first_row = None;
        tactic = !last_tactic;
        goal = !last_goal;
        goal_provenance =
          Printf.sprintf "per-iteration dynamic probes (%d probes, %d memoized)" !probes
            !hits;
        policy = !last_policy;
        status = Retrieval.Completed;
        trace = [];
      }
    in
    summaries := !summaries @ [ (b_name, probe_summary) ];
    (* Post-filter on the combined schema, then finalize. *)
    let rows = combined in
    let rows =
      match post_pred with
      | Predicate.True -> rows
      | p ->
          let schema = joined_schema ~sa ~sb ~a_name ~b_name in
          List.filter (fun r -> Predicate.eval p schema r) rows
    in
    finalize_join db sel ~canon ~sa ~sb ~a_name ~b_name rows ?force_limit ()
  end

and joined_schema ~sa ~sb ~a_name ~b_name =
  Schema.make
    (List.map
       (fun c -> Schema.col ~nullable:true (a_name ^ "." ^ c.Schema.name) c.Schema.ty)
       (Schema.columns sa)
    @ List.map
        (fun c -> Schema.col ~nullable:true (b_name ^ "." ^ c.Schema.name) c.Schema.ty)
        (Schema.columns sb))

and finalize_join db sel ~canon ~sa ~sb ~a_name ~b_name rows ?force_limit () =
  ignore db;
  let schema = joined_schema ~sa ~sb ~a_name ~b_name in
  let proj_cols =
    match sel.Ast.projection with
    | Ast.Star ->
        List.map (fun c -> c.Schema.name) (Schema.columns schema)
    | Ast.Cols cs -> List.map canon cs
    | Ast.Aggs aggs ->
        List.sort_uniq compare (List.concat_map (fun (a, _) -> List.map canon (agg_columns a)) aggs)
  in
  (* ORDER BY on the combined rows. *)
  let rows =
    if sel.Ast.order_by = [] then rows
    else begin
      let ids =
        Array.of_list (List.map (fun c -> Schema.index_of schema (canon c)) sel.Ast.order_by)
      in
      List.stable_sort (Row.compare_at ids) rows
    end
  in
  let project row = List.map (fun c -> Row.get row (Schema.index_of schema c)) proj_cols in
  let projected =
    match sel.Ast.projection with
    | Ast.Aggs aggs ->
        let values col = List.map (fun r -> Row.get r (Schema.index_of schema (canon col))) rows in
        let non_null col = List.filter (fun v -> not (Value.is_null v)) (values col) in
        let numeric col = List.filter_map Value.as_float (non_null col) in
        let compute = function
          | Ast.Count_star -> Value.int (List.length rows)
          | Ast.Count c -> Value.int (List.length (non_null c))
          | Ast.Sum c ->
              let xs = numeric c in
              if xs = [] then Value.Null
              else begin
                let s = List.fold_left ( +. ) 0.0 xs in
                if Float.is_integer s then Value.int (int_of_float s) else Value.float s
              end
          | Ast.Avg c ->
              let xs = numeric c in
              if xs = [] then Value.Null
              else Value.float (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))
          | Ast.Min c -> (
              match non_null c with
              | [] -> Value.Null
              | v :: rest ->
                  List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest)
          | Ast.Max c -> (
              match non_null c with
              | [] -> Value.Null
              | v :: rest ->
                  List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest)
        in
        [ List.map (fun (a, _) -> compute a) aggs ]
    | Ast.Star | Ast.Cols _ ->
        let projected = List.map project rows in
        let projected =
          if sel.Ast.distinct then
            List.sort_uniq (fun a b -> List.compare Value.compare a b) projected
          else projected
        in
        projected
  in
  let limit =
    match (sel.Ast.limit, force_limit) with
    | Some a, Some b -> Some (Int.min a b)
    | Some a, None -> Some a
    | None, l -> l
  in
  match limit with
  | Some n -> List.filteri (fun i _ -> i < n) projected
  | None -> projected


let resolve_operand env = function
  | Ast.Lit v -> v
  | Ast.Host h -> (
      match List.assoc_opt h env with
      | Some v -> v
      | None -> raise (Predicate.Unbound_param h))

(* Materialize the qualifying (rid, row) pairs *before* mutating —
   classic Halloween protection: an UPDATE that moves a row within an
   index it is scanned through must not see it twice. *)
let collect_pairs db env config (tbl : Table.t) where summaries =
  let restriction =
    match where with
    | None -> Predicate.True
    | Some c -> cond_to_predicate db env config summaries c
  in
  List.iter
    (fun c ->
      if not (Schema.mem (Table.schema tbl) c) then fail "unknown column %s" c)
    (Predicate.columns restriction);
  let req = Retrieval.request ~env restriction in
  let cursor = Retrieval.open_ ?config tbl req in
  let pairs = Retrieval.drain_pairs cursor in
  let summary = Retrieval.close cursor in
  summaries := !summaries @ [ (Table.name tbl, summary) ];
  check_status summary;
  pairs

let execute_dml ?(env = []) ?config db stmt =
  match stmt with
  | Ast.Delete { from; where } ->
      let tbl =
        match Database.find_table db from with
        | Some t -> t
        | None -> fail "no such table: %s" from
      in
      let summaries = ref [] in
      let pairs = collect_pairs db env config tbl where summaries in
      let deleted =
        List.fold_left
          (fun acc (rid, _) -> if Table.delete tbl rid then acc + 1 else acc)
          0 pairs
      in
      {
        columns = [];
        rows = [];
        summaries = !summaries;
        message = Some (Printf.sprintf "%d row(s) deleted from %s" deleted from);
      }
  | Ast.Update { table; assignments; where } ->
      let tbl =
        match Database.find_table db table with
        | Some t -> t
        | None -> fail "no such table: %s" table
      in
      let schema = Table.schema tbl in
      let resolved =
        List.map
          (fun (col, o) ->
            match Schema.find schema col with
            | Some i -> (i, resolve_operand env o)
            | None -> fail "unknown column %s" col)
          assignments
      in
      let summaries = ref [] in
      let pairs = collect_pairs db env config tbl where summaries in
      let updated =
        List.fold_left
          (fun acc (rid, row) ->
            let fresh = Array.copy row in
            List.iter (fun (i, v) -> fresh.(i) <- v) resolved;
            if Table.update tbl rid fresh then acc + 1 else acc)
          0 pairs
      in
      {
        columns = [];
        rows = [];
        summaries = !summaries;
        message = Some (Printf.sprintf "%d row(s) updated in %s" updated table);
      }
  | stmt ->
      (* [execute] routes only Delete/Update here; a future statement
         kind reaching this point is a dispatch bug, reported as a
         structured error rather than a crash. *)
      fail "internal: execute_dml cannot handle %s"
        (match stmt with
        | Ast.Select _ -> "SELECT"
        | Ast.Explain _ -> "EXPLAIN"
        | Ast.Create_table _ -> "CREATE TABLE"
        | Ast.Create_index _ -> "CREATE INDEX"
        | Ast.Insert _ -> "INSERT"
        | Ast.Check_table _ -> "CHECK TABLE"
        | Ast.Repair_table _ -> "REPAIR"
        | Ast.Delete _ | Ast.Update _ -> "DML (unreachable)")

let header_of db sel =
  match sel.Ast.projection with
  | Ast.Aggs aggs -> List.map snd aggs
  | Ast.Cols cs -> cs
  | Ast.Star -> (
      match sel.Ast.joined with
      | None -> projection_columns db sel
      | Some b_name ->
          let cols t prefix =
            List.map (fun c -> prefix ^ "." ^ c.Schema.name)
              (Schema.columns (Table.schema t))
          in
          cols (Database.table db sel.Ast.table) sel.Ast.table
          @ cols (Database.table db b_name) b_name)

(* EXPLAIN ANALYZE annotations: the plan already ran (the dynamic
   optimizer *is* execution), so pair every estimate in the trace with
   the actual it turned out to have, and surface the per-span actuals
   recorded by the retrieval. *)
let analyze_lines (s : Retrieval.summary) =
  let module T = Rdb_exec.Trace in
  let actuals = Hashtbl.create 4 in
  List.iter
    (function
      | T.Scan_completed { index; kept; scanned } ->
          Hashtbl.replace actuals index (kept, scanned)
      | _ -> ())
    s.Retrieval.trace;
  let est_lines =
    List.filter_map
      (function
        | T.Feedback_applied { index; raw; corrected } ->
            (* Feedback corrections (DESIGN.md §13): show what the raw
               descent said next to what the optimizer actually used. *)
            Some
              (Printf.sprintf
                 "  analyze: %s feedback correction: raw estimate ~%.0f, used ~%.0f \
                  (%.2fx learned)"
                 index raw corrected
                 (corrected /. Float.max 1.0 raw))
        | T.Estimated { index; estimate; exact; _ } -> (
            match Hashtbl.find_opt actuals index with
            | Some (kept, scanned) ->
                let actual = float_of_int (max scanned 1) in
                let est = Float.max 1.0 estimate in
                let err = Float.max (est /. actual) (actual /. est) in
                Some
                  (Printf.sprintf
                     "  analyze: %s estimated ~%.0f rids%s, actual %d scanned / %d kept \
                      (error %.2fx)"
                     index estimate
                     (if exact then " (exact)" else "")
                     scanned kept err)
            | None ->
                Some
                  (Printf.sprintf "  analyze: %s estimated ~%.0f rids, scan not completed"
                     index estimate))
        | _ -> None)
      s.Retrieval.trace
  in
  let span_lines =
    List.filter_map
      (function
        | T.Span_end { span; cost; rows } ->
            Some (Printf.sprintf "  analyze: span %s: actual cost %.2f, %d rows" span cost rows)
        | _ -> None)
      s.Retrieval.trace
  in
  let first =
    match s.Retrieval.cost_to_first_row with
    | Some c -> Printf.sprintf ", first row at %.2f" c
    | None -> ""
  in
  est_lines @ span_lines
  @ [
      Printf.sprintf "  analyze: %d rows, total cost %.2f%s (%s)" s.Retrieval.rows_delivered
        s.Retrieval.total_cost first
        (Retrieval.status_to_string s.Retrieval.status);
    ]

let execute ?(env = []) ?config db stmt =
  match stmt with
  | Ast.Select sel ->
      let summaries = ref [] in
      let rows = run_select db env config summaries sel ~outer:None () in
      { columns = header_of db sel; rows; summaries = !summaries; message = None }
  | Ast.Explain { analyze; query = sel } ->
      let summaries = ref [] in
      let _rows = run_select db env config summaries sel ~outer:None () in
      let lines =
        List.concat_map
          (fun (tbl, (s : Retrieval.summary)) ->
            (Printf.sprintf "retrieval of %s: goal %s (%s), tactic %s" tbl
               (Goal.to_string s.Retrieval.goal)
               s.Retrieval.goal_provenance
               (Retrieval.tactic_to_string s.Retrieval.tactic))
            :: ("  policy: " ^ s.Retrieval.policy)
            :: List.map
                 (fun e -> "  " ^ Rdb_exec.Trace.event_to_string e)
                 s.Retrieval.trace
            @ [ Printf.sprintf "  total cost %.2f, %d rows" s.Retrieval.total_cost
                  s.Retrieval.rows_delivered ]
            @ (if analyze then analyze_lines s else []))
          !summaries
      in
      {
        columns = [ "plan" ];
        rows = List.map (fun l -> [ Value.str l ]) lines;
        summaries = !summaries;
        message = None;
      }
  | Ast.Create_table (name, defs) ->
      let schema =
        Schema.make
          (List.map
             (fun d ->
               Schema.col ~nullable:d.Ast.col_nullable d.Ast.col_name d.Ast.col_type)
             defs)
      in
      let _ = Database.create_table db ~name schema in
      { columns = []; rows = []; summaries = []; message = Some ("table " ^ name ^ " created") }
  | Ast.Create_index { index; on_table; columns } ->
      let table =
        match Database.find_table db on_table with
        | Some t -> t
        | None -> fail "no such table: %s" on_table
      in
      let _ = Table.create_index table ~name:index ~columns () in
      { columns = []; rows = []; summaries = []; message = Some ("index " ^ index ^ " created") }
  | (Ast.Delete _ | Ast.Update _) as dml -> execute_dml ?env:(Some env) ?config db dml
  | Ast.Insert { into; rows } ->
      let table =
        match Database.find_table db into with
        | Some t -> t
        | None -> fail "no such table: %s" into
      in
      let resolve = function
        | Ast.Lit v -> v
        | Ast.Host h -> (
            match List.assoc_opt h env with
            | Some v -> v
            | None -> fail "unbound host variable :%s" h)
      in
      List.iter
        (fun row -> ignore (Table.insert table (Array.of_list (List.map resolve row))))
        rows;
      {
        columns = [];
        rows = [];
        summaries = [];
        message = Some (Printf.sprintf "%d row(s) inserted into %s" (List.length rows) into);
      }
  | Ast.Check_table name ->
      let table =
        match Database.find_table db name with
        | Some t -> t
        | None -> fail "no such table: %s" name
      in
      let rep =
        try Check.run table
        with Rdb_storage.Fault.Injected f ->
          fail "CHECK %s aborted: heap unreadable (%s)" name (Rdb_storage.Fault.describe f)
      in
      let health = Table.health table in
      let rows =
        List.map
          (fun (r : Check.index_report) ->
            [
              Value.str r.Check.ir_index;
              Value.int r.Check.ir_entries;
              Value.int r.Check.ir_missing;
              Value.int r.Check.ir_phantom;
              Value.str (Check.damage_to_string r);
              Value.str (Health.state_to_string (Health.state health r.Check.ir_index));
            ])
          rep.Check.indexes
      in
      let n_clean = List.length (List.filter Check.clean rep.Check.indexes) in
      {
        columns = [ "index"; "entries"; "missing"; "phantom"; "status"; "health" ];
        rows;
        summaries = [];
        message =
          Some
            (Printf.sprintf "checked %s: %d heap rows, %d/%d indexes clean (cost %.0f)"
               name rep.Check.heap_rows n_clean
               (List.length rep.Check.indexes)
               rep.Check.cost);
      }
  | Ast.Repair_table { table = tname; index } ->
      let table =
        match Database.find_table db tname with
        | Some t -> t
        | None -> fail "no such table: %s" tname
      in
      (* Heal corrupt heap pages first: the heap is the ground truth
         every index rebuild copies from, and an unreadable page would
         otherwise abort the consistency check below.  Persistent heap
         faults still abort — a rewrite cannot fix a dead disk. *)
      let heap_rewrites =
        try
          Rdb_storage.Heap_file.rewrite_corrupt_pages (Table.heap table)
            (Table.build_meter table)
        with Rdb_storage.Fault.Injected f ->
          fail "REPAIR %s aborted: heap unreadable (%s)" tname
            (Rdb_storage.Fault.describe f)
      in
      if heap_rewrites > 0 then
        ignore (Health.mark_healthy (Table.health table) Table.heap_structure);
      let heap_note =
        if heap_rewrites > 0 then
          Printf.sprintf "; rewrote %d corrupt heap page(s)" heap_rewrites
        else ""
      in
      let targets =
        match index with
        | Some i -> (
            match Table.find_index table i with
            | Some _ -> [ i ]
            | None -> fail "no such index: %s on %s" i tname)
        | None ->
            (* Every index that is unhealthy or fails the consistency
               check — REPAIR TABLE is "check, then fix what is
               broken". *)
            let health = Table.health table in
            let unhealthy =
              List.filter_map
                (fun idx ->
                  if Health.state health idx.Table.idx_name <> Health.Healthy then
                    Some idx.Table.idx_name
                  else None)
                (Table.indexes table)
            in
            let damaged =
              try
                List.map
                  (fun (r : Check.index_report) -> r.Check.ir_index)
                  (Check.damaged (Check.run table))
              with Rdb_storage.Fault.Injected f ->
                fail "REPAIR %s aborted: heap unreadable (%s)" tname
                  (Rdb_storage.Fault.describe f)
            in
            List.sort_uniq compare (unhealthy @ damaged)
      in
      if targets = [] then
        {
          columns = [];
          rows = [];
          summaries = [];
          message =
            Some
              (if heap_rewrites > 0 then
                 Printf.sprintf "%s: rewrote %d corrupt heap page(s), indexes clean"
                   tname heap_rewrites
               else tname ^ ": nothing to repair");
        }
      else begin
        (* One repair session per index, admitted through the scheduler
           — the same path background repair takes under concurrent
           load, so SQL REPAIR and chaos-time repair cannot diverge. *)
        let sched = Session.create db in
        List.iter
          (fun i -> ignore (Session.submit_repair sched ~label:("repair:" ^ i) table ~index:i))
          targets;
        let report = Session.run sched in
        let rows =
          List.map
            (fun (p : Session.repair_stats) ->
              [
                Value.str p.Session.r_index;
                Value.int p.Session.r_entries;
                Value.str (if p.Session.r_ok then "rebuilt" else "failed");
              ])
            report.Session.repairs
        in
        let ok = List.length (List.filter (fun p -> p.Session.r_ok) report.Session.repairs) in
        {
          columns = [ "index"; "entries"; "result" ];
          rows;
          summaries = [];
          message =
            Some
              (Printf.sprintf "repaired %d/%d index(es) on %s%s" ok (List.length targets)
                 tname heap_note);
        }
      end

let execute_sql ?env ?config db src = execute ?env ?config db (Parser.parse_statement src)

let goal_context_of_select = goal_context_of_select

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Host_var of string
  | Symbol of string
  | Eof

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit t = out := t :: !out in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '-' then begin
      emit (Symbol "-");
      incr pos
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (Ident (String.uppercase_ascii (String.sub src start (!pos - start))))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      (* exponent part: e / E with optional sign *)
      (if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
         let after_sign =
           match peek 1 with
           | Some ('+' | '-') -> 2
           | _ -> 1
         in
         match peek after_sign with
         | Some d when is_digit d ->
             is_float := true;
             pos := !pos + after_sign;
             while !pos < n && is_digit src.[!pos] do
               incr pos
             done
         | _ -> ()
       end);
      let lit = String.sub src start (!pos - start) in
      if !is_float then begin
        match float_of_string_opt lit with
        | Some f -> emit (Float_lit f)
        | None -> raise (Lex_error ("malformed number " ^ lit, start))
      end
      else begin
        match int_of_string_opt lit with
        | Some i -> emit (Int_lit i)
        | None ->
            (* e.g. wider than the native int — not representable *)
            raise (Lex_error ("integer literal out of range " ^ lit, start))
      end
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then raise (Lex_error ("unterminated string", !pos));
        let c = src.[!pos] in
        if c = '\'' then begin
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            loop ()
          end
          else incr pos
        end
        else begin
          Buffer.add_char buf c;
          incr pos;
          loop ()
        end
      in
      loop ();
      emit (String_lit (Buffer.contents buf))
    end
    else if c = ':' then begin
      incr pos;
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      if !pos = start then raise (Lex_error ("expected host variable name after ':'", !pos));
      emit (Host_var (String.uppercase_ascii (String.sub src start (!pos - start))))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "!=" | "<=" | ">=" ->
          emit (Symbol two);
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '=' | '<' | '>' | ';' | '.' ->
              emit (Symbol (String.make 1 c));
              incr pos
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !pos)))
    end
  done;
  emit Eof;
  List.rev !out

let token_to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Host_var v -> ":" ^ v
  | Symbol s -> s
  | Eof -> "<eof>"

open Rdb_data

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let expect_symbol st s =
  match peek st with
  | Lexer.Symbol x when x = s -> advance st
  | t -> fail "expected '%s', got %s" s (Lexer.token_to_string t)

let expect_kw st kw =
  match peek st with
  | Lexer.Ident x when x = kw -> advance st
  | t -> fail "expected %s, got %s" kw (Lexer.token_to_string t)

let accept_kw st kw =
  match peek st with
  | Lexer.Ident x when x = kw ->
      advance st;
      true
  | _ -> false

let accept_symbol st s =
  match peek st with
  | Lexer.Symbol x when x = s ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.Ident x ->
      advance st;
      x
  | t -> fail "expected identifier, got %s" (Lexer.token_to_string t)

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "BETWEEN"; "IN"; "LIKE"; "IS";
    "NULL"; "ORDER"; "BY"; "LIMIT"; "TO"; "ROWS"; "OPTIMIZE"; "FOR"; "FAST"; "FIRST";
    "TOTAL"; "TIME"; "DISTINCT"; "EXISTS"; "VALUES"; "INSERT"; "INTO"; "CREATE";
    "TABLE"; "INDEX"; "ON"; "EXPLAIN"; "ANALYZE"; "DELETE"; "UPDATE"; "SET";
    "CHECK"; "REPAIR" ]

let column st =
  let name = ident st in
  if List.mem name keywords then fail "unexpected keyword %s where a column was expected" name;
  (* optional qualifier: TABLE.COLUMN *)
  match st.toks with
  | Lexer.Symbol "." :: Lexer.Ident part :: _ when not (List.mem part keywords) ->
      advance st;
      advance st;
      name ^ "." ^ part
  | _ -> name

let rec operand st =
  match peek st with
  | Lexer.Symbol "-" -> (
      advance st;
      match operand st with
      | Ast.Lit (Value.Int i) -> Ast.Lit (Value.int (-i))
      | Ast.Lit (Value.Float f) -> Ast.Lit (Value.float (-.f))
      | _ -> fail "expected a numeric literal after unary minus")
  | Lexer.Int_lit i ->
      advance st;
      Ast.Lit (Value.int i)
  | Lexer.Float_lit f ->
      advance st;
      Ast.Lit (Value.float f)
  | Lexer.String_lit s ->
      advance st;
      Ast.Lit (Value.str s)
  | Lexer.Host_var v ->
      advance st;
      Ast.Host v
  | Lexer.Ident "NULL" ->
      advance st;
      Ast.Lit Value.Null
  | t -> fail "expected literal or host variable, got %s" (Lexer.token_to_string t)

let comparison_of_symbol = function
  | "=" -> Some Ast.Eq
  | "<>" | "!=" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let first = parse_and st in
  let rec loop acc =
    if accept_kw st "OR" then loop (parse_and st :: acc) else List.rev acc
  in
  match loop [ first ] with [ one ] -> one | many -> Ast.C_or many

and parse_and st =
  let first = parse_not st in
  let rec loop acc =
    if accept_kw st "AND" then loop (parse_not st :: acc) else List.rev acc
  in
  match loop [ first ] with [ one ] -> one | many -> Ast.C_and many

and parse_not st =
  if accept_kw st "NOT" then Ast.C_not (parse_not st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Symbol "(" ->
      advance st;
      let c = parse_cond st in
      expect_symbol st ")";
      c
  | Lexer.Ident "EXISTS" ->
      advance st;
      expect_symbol st "(";
      let sub = parse_select_body st in
      expect_symbol st ")";
      Ast.C_exists sub
  | Lexer.Ident "TRUE" ->
      advance st;
      Ast.C_true
  | Lexer.Ident "FALSE" ->
      advance st;
      Ast.C_false
  | _ ->
      let col = column st in
      parse_rest st col

and parse_rest st col =
  match peek st with
  | Lexer.Symbol s when comparison_of_symbol s <> None -> (
      advance st;
      let op = Option.get (comparison_of_symbol s) in
      match peek st with
      | Lexer.Ident name when name <> "NULL" && not (List.mem name keywords) ->
          Ast.C_cmp_col (col, op, column st)
      | _ -> Ast.C_cmp (col, op, operand st))
  | Lexer.Ident "BETWEEN" ->
      advance st;
      let lo = operand st in
      expect_kw st "AND";
      let hi = operand st in
      Ast.C_between (col, lo, hi)
  | Lexer.Ident "NOT" ->
      advance st;
      (match peek st with
      | Lexer.Ident "IN" -> Ast.C_not (parse_in st col)
      | Lexer.Ident "LIKE" -> Ast.C_not (parse_like st col)
      | t -> fail "expected IN or LIKE after NOT, got %s" (Lexer.token_to_string t))
  | Lexer.Ident "IN" -> parse_in st col
  | Lexer.Ident "LIKE" -> parse_like st col
  | Lexer.Ident "IS" ->
      advance st;
      if accept_kw st "NOT" then begin
        expect_kw st "NULL";
        Ast.C_is_not_null col
      end
      else begin
        expect_kw st "NULL";
        Ast.C_is_null col
      end
  | t -> fail "expected a predicate after %s, got %s" col (Lexer.token_to_string t)

and parse_in st col =
  expect_kw st "IN";
  expect_symbol st "(";
  let result =
    match peek st with
    | Lexer.Ident "SELECT" -> Ast.C_in_select (col, parse_select_body st)
    | _ ->
        let rec items acc =
          let o = operand st in
          if accept_symbol st "," then items (o :: acc) else List.rev (o :: acc)
        in
        Ast.C_in_list (col, items [])
  in
  expect_symbol st ")";
  result

and parse_like st col =
  expect_kw st "LIKE";
  match peek st with
  | Lexer.String_lit s ->
      advance st;
      Ast.C_like (col, s)
  | t -> fail "expected pattern string after LIKE, got %s" (Lexer.token_to_string t)

and parse_projection st =
  if accept_symbol st "*" then Ast.Star
  else begin
    let agg_kw = function
      | "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" -> true
      | _ -> false
    in
    match peek st with
    | Lexer.Ident k when agg_kw k && st.toks <> [] -> (
        (* lookahead for '(' to distinguish aggregate from column *)
        match st.toks with
        | _ :: Lexer.Symbol "(" :: _ ->
            let rec aggs acc =
              let k = ident st in
              expect_symbol st "(";
              let a =
                match k with
                | "COUNT" ->
                    if accept_symbol st "*" then Ast.Count_star else Ast.Count (column st)
                | "SUM" -> Ast.Sum (column st)
                | "AVG" -> Ast.Avg (column st)
                | "MIN" -> Ast.Min (column st)
                | "MAX" -> Ast.Max (column st)
                | _ -> fail "unknown aggregate %s" k
              in
              expect_symbol st ")";
              let acc = (a, Ast.agg_name a) :: acc in
              if accept_symbol st "," then aggs acc else List.rev acc
            in
            Ast.Aggs (aggs [])
        | _ ->
            let rec cols acc =
              let c = column st in
              if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
            in
            Ast.Cols (cols []))
    | _ ->
        let rec cols acc =
          let c = column st in
          if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
        in
        Ast.Cols (cols [])
  end

and parse_select_body st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let projection = parse_projection st in
  expect_kw st "FROM";
  let table = ident st in
  let joined = if accept_symbol st "," then Some (ident st) else None in
  let where = if accept_kw st "WHERE" then Some (parse_cond st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec cols acc =
        let c = column st in
        if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      let _ = accept_kw st "TO" in
      match peek st with
      | Lexer.Int_lit n ->
          advance st;
          let _ = accept_kw st "ROWS" in
          if n < 0 then fail "negative LIMIT";
          Some n
      | t -> fail "expected row count after LIMIT, got %s" (Lexer.token_to_string t)
    end
    else None
  in
  let optimize =
    if accept_kw st "OPTIMIZE" then begin
      expect_kw st "FOR";
      if accept_kw st "FAST" then begin
        expect_kw st "FIRST";
        Some Rdb_core.Goal.Fast_first
      end
      else begin
        expect_kw st "TOTAL";
        expect_kw st "TIME";
        Some Rdb_core.Goal.Total_time
      end
    end
    else None
  in
  { Ast.distinct; projection; table; joined; where; order_by; limit; optimize }

let parse_statement_state st =
  match peek st with
  | Lexer.Ident "SELECT" -> Ast.Select (parse_select_body st)
  | Lexer.Ident "EXPLAIN" ->
      advance st;
      let analyze =
        match peek st with
        | Lexer.Ident "ANALYZE" ->
            advance st;
            true
        | _ -> false
      in
      Ast.Explain { analyze; query = parse_select_body st }
  | Lexer.Ident "CREATE" -> (
      advance st;
      match peek st with
      | Lexer.Ident "TABLE" ->
          advance st;
          let name = ident st in
          expect_symbol st "(";
          let rec cols acc =
            let col_name = column st in
            let col_type =
              match ident st with
              | "INT" | "INTEGER" -> Value.T_int
              | "FLOAT" | "REAL" | "DOUBLE" -> Value.T_float
              | "STRING" | "TEXT" | "VARCHAR" | "CHAR" ->
                  (* optional (n) ignored *)
                  if accept_symbol st "(" then begin
                    (match peek st with Lexer.Int_lit _ -> advance st | _ -> ());
                    expect_symbol st ")"
                  end;
                  Value.T_str
              | t -> fail "unknown type %s" t
            in
            let col_nullable = accept_kw st "NULL" in
            let acc = { Ast.col_name; col_type; col_nullable } :: acc in
            if accept_symbol st "," then cols acc else List.rev acc
          in
          let defs = cols [] in
          expect_symbol st ")";
          Ast.Create_table (name, defs)
      | Lexer.Ident "INDEX" ->
          advance st;
          let index = ident st in
          expect_kw st "ON";
          let on_table = ident st in
          expect_symbol st "(";
          let rec cols acc =
            let c = column st in
            if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
          in
          let columns = cols [] in
          expect_symbol st ")";
          Ast.Create_index { index; on_table; columns }
      | t -> fail "expected TABLE or INDEX after CREATE, got %s" (Lexer.token_to_string t))
  | Lexer.Ident "INSERT" ->
      advance st;
      expect_kw st "INTO";
      let into = ident st in
      expect_kw st "VALUES";
      let rec rows acc =
        expect_symbol st "(";
        let rec vals acc =
          let v = operand st in
          if accept_symbol st "," then vals (v :: acc) else List.rev (v :: acc)
        in
        let row = vals [] in
        expect_symbol st ")";
        let acc = row :: acc in
        if accept_symbol st "," then rows acc else List.rev acc
      in
      Ast.Insert { into; rows = rows [] }
  | Lexer.Ident "DELETE" ->
      advance st;
      expect_kw st "FROM";
      let from = ident st in
      let where = if accept_kw st "WHERE" then Some (parse_cond st) else None in
      Ast.Delete { from; where }
  | Lexer.Ident "UPDATE" ->
      advance st;
      let table = ident st in
      expect_kw st "SET";
      let rec assignments acc =
        let col = column st in
        expect_symbol st "=";
        let v = operand st in
        let acc = (col, v) :: acc in
        if accept_symbol st "," then assignments acc else List.rev acc
      in
      let assignments = assignments [] in
      let where = if accept_kw st "WHERE" then Some (parse_cond st) else None in
      Ast.Update { table; assignments; where }
  | Lexer.Ident "CHECK" ->
      advance st;
      expect_kw st "TABLE";
      Ast.Check_table (ident st)
  | Lexer.Ident "REPAIR" -> (
      advance st;
      match peek st with
      | Lexer.Ident "TABLE" ->
          advance st;
          Ast.Repair_table { table = ident st; index = None }
      | Lexer.Ident "INDEX" ->
          advance st;
          let index = ident st in
          expect_kw st "ON";
          Ast.Repair_table { table = ident st; index = Some index }
      | t -> fail "expected TABLE or INDEX after REPAIR, got %s" (Lexer.token_to_string t))
  | t -> fail "expected a statement, got %s" (Lexer.token_to_string t)

let finish st v =
  let _ = accept_symbol st ";" in
  match peek st with
  | Lexer.Eof -> v
  | t -> fail "trailing input: %s" (Lexer.token_to_string t)

let parse_statement src =
  let st = { toks = Lexer.tokenize src } in
  finish st (parse_statement_state st)

let parse_select src =
  let st = { toks = Lexer.tokenize src } in
  finish st (parse_select_body st)

open Rdb_data

type operand = Lit of Value.t | Host of string

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | C_true
  | C_false
  | C_cmp of string * comparison * operand
  | C_cmp_col of string * comparison * string
  | C_between of string * operand * operand
  | C_in_list of string * operand list
  | C_in_select of string * select
  | C_exists of select
  | C_like of string * string
  | C_is_null of string
  | C_is_not_null of string
  | C_and of cond list
  | C_or of cond list
  | C_not of cond

and agg = Count_star | Count of string | Sum of string | Avg of string | Min of string | Max of string

and projection = Star | Cols of string list | Aggs of (agg * string) list

and select = {
  distinct : bool;
  projection : projection;
  table : string;
  joined : string option;
      (** second FROM table: an inner join driven by repeated
          parameterized retrieval (columns may be qualified [T.COL]) *)
  where : cond option;
  order_by : string list;
  limit : int option;
  optimize : Rdb_core.Goal.t option;
}

type column_def = { col_name : string; col_type : Value.ty; col_nullable : bool }

type statement =
  | Select of select
  | Explain of { analyze : bool; query : select }
      (** [analyze]: annotate the plan with actual per-node costs and
          row counts next to the estimates (EXPLAIN ANALYZE) *)
  | Create_table of string * column_def list
  | Create_index of { index : string; on_table : string; columns : string list }
  | Insert of { into : string; rows : operand list list }
  | Delete of { from : string; where : cond option }
  | Update of {
      table : string;
      assignments : (string * operand) list;
      where : cond option;
    }
  | Check_table of string
      (** CHECK TABLE t: cross-validate every index against the heap *)
  | Repair_table of { table : string; index : string option }
      (** REPAIR TABLE t (every damaged index) or REPAIR INDEX i ON t:
          online rebuild through the session scheduler *)

let agg_name = function
  | Count_star -> "COUNT(*)"
  | Count c -> Printf.sprintf "COUNT(%s)" c
  | Sum c -> Printf.sprintf "SUM(%s)" c
  | Avg c -> Printf.sprintf "AVG(%s)" c
  | Min c -> Printf.sprintf "MIN(%s)" c
  | Max c -> Printf.sprintf "MAX(%s)" c

(* --- printing back to SQL ------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''"
      else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let value_to_sql (v : Value.t) =
  match v with
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s -> escape_string s

let operand_to_string = function
  | Lit v -> value_to_sql v
  | Host h -> ":" ^ h

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec cond_to_string = function
  | C_true -> "TRUE"
  | C_false -> "FALSE"
  | C_cmp (c, op, o) ->
      Printf.sprintf "%s %s %s" c (comparison_to_string op) (operand_to_string o)
  | C_cmp_col (a, op, b) -> Printf.sprintf "%s %s %s" a (comparison_to_string op) b
  | C_between (c, a, b) ->
      Printf.sprintf "%s BETWEEN %s AND %s" c (operand_to_string a) (operand_to_string b)
  | C_in_list (c, os) ->
      Printf.sprintf "%s IN (%s)" c (String.concat ", " (List.map operand_to_string os))
  | C_in_select (c, sub) -> Printf.sprintf "%s IN (%s)" c (select_to_string sub)
  | C_exists sub -> Printf.sprintf "EXISTS (%s)" (select_to_string sub)
  | C_like (c, p) -> Printf.sprintf "%s LIKE %s" c (escape_string p)
  | C_is_null c -> c ^ " IS NULL"
  | C_is_not_null c -> c ^ " IS NOT NULL"
  | C_and cs -> "(" ^ String.concat " AND " (List.map cond_to_string cs) ^ ")"
  | C_or cs -> "(" ^ String.concat " OR " (List.map cond_to_string cs) ^ ")"
  | C_not c -> "NOT (" ^ cond_to_string c ^ ")"

and projection_to_string = function
  | Star -> "*"
  | Cols cs -> String.concat ", " cs
  | Aggs aggs -> String.concat ", " (List.map (fun (a, _) -> agg_name a) aggs)

and select_to_string s =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (projection_to_string s.projection);
  Buffer.add_string buf
    (" FROM " ^ s.table ^ match s.joined with Some t -> ", " ^ t | None -> "");
  (match s.where with
  | Some c -> Buffer.add_string buf (" WHERE " ^ cond_to_string c)
  | None -> ());
  if s.order_by <> [] then
    Buffer.add_string buf (" ORDER BY " ^ String.concat ", " s.order_by);
  (match s.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT TO %d ROWS" n)
  | None -> ());
  (match s.optimize with
  | Some Rdb_core.Goal.Fast_first -> Buffer.add_string buf " OPTIMIZE FOR FAST FIRST"
  | Some Rdb_core.Goal.Total_time -> Buffer.add_string buf " OPTIMIZE FOR TOTAL TIME"
  | None -> ());
  Buffer.contents buf

let statement_to_string = function
  | Select s -> select_to_string s
  | Explain { analyze; query } ->
      "EXPLAIN " ^ (if analyze then "ANALYZE " else "") ^ select_to_string query
  | Create_table (name, defs) ->
      let def d =
        let ty =
          match d.col_type with
          | Value.T_int -> "INT"
          | Value.T_float -> "FLOAT"
          | Value.T_str -> "STRING"
        in
        Printf.sprintf "%s %s%s" d.col_name ty (if d.col_nullable then " NULL" else "")
      in
      Printf.sprintf "CREATE TABLE %s (%s)" name (String.concat ", " (List.map def defs))
  | Create_index { index; on_table; columns } ->
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" index on_table (String.concat ", " columns)
  | Insert { into; rows } ->
      Printf.sprintf "INSERT INTO %s VALUES %s" into
        (String.concat ", "
           (List.map
              (fun row -> "(" ^ String.concat ", " (List.map operand_to_string row) ^ ")")
              rows))
  | Delete { from; where } ->
      Printf.sprintf "DELETE FROM %s%s" from
        (match where with Some c -> " WHERE " ^ cond_to_string c | None -> "")
  | Update { table; assignments; where } ->
      Printf.sprintf "UPDATE %s SET %s%s" table
        (String.concat ", "
           (List.map (fun (c, o) -> c ^ " = " ^ operand_to_string o) assignments))
        (match where with Some c -> " WHERE " ^ cond_to_string c | None -> "")
  | Check_table t -> "CHECK TABLE " ^ t
  | Repair_table { table; index = None } -> "REPAIR TABLE " ^ table
  | Repair_table { table; index = Some i } ->
      Printf.sprintf "REPAIR INDEX %s ON %s" i table

(** Abstract syntax of the SQL subset.

    Enough surface to express the paper's examples end-to-end: single-
    table SELECTs with rich WHERE clauses, host variables, DISTINCT,
    ORDER BY, LIMIT TO n ROWS, EXISTS / IN subqueries (uncorrelated),
    aggregates, and the extended OPTIMIZE FOR clause — plus DDL/DML for
    the shell. *)

open Rdb_data

type operand = Lit of Value.t | Host of string

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | C_true
  | C_false
  | C_cmp of string * comparison * operand
  | C_cmp_col of string * comparison * string
  | C_between of string * operand * operand
  | C_in_list of string * operand list
  | C_in_select of string * select
  | C_exists of select
  | C_like of string * string
  | C_is_null of string
  | C_is_not_null of string
  | C_and of cond list
  | C_or of cond list
  | C_not of cond

and agg = Count_star | Count of string | Sum of string | Avg of string | Min of string | Max of string

and projection = Star | Cols of string list | Aggs of (agg * string) list
    (** aggregates carry their display name *)

and select = {
  distinct : bool;
  projection : projection;
  table : string;
  joined : string option;
      (** second FROM table: an inner join driven by repeated
          parameterized retrieval (columns may be qualified [T.COL]) *)
  where : cond option;
  order_by : string list;
  limit : int option;
  optimize : Rdb_core.Goal.t option;
}

type column_def = { col_name : string; col_type : Value.ty; col_nullable : bool }

type statement =
  | Select of select
  | Explain of { analyze : bool; query : select }
      (** [analyze]: annotate the plan with actual per-node costs and
          row counts next to the estimates (EXPLAIN ANALYZE) *)
  | Create_table of string * column_def list
  | Create_index of { index : string; on_table : string; columns : string list }
  | Insert of { into : string; rows : operand list list }
  | Delete of { from : string; where : cond option }
  | Update of {
      table : string;
      assignments : (string * operand) list;
      where : cond option;
    }
  | Check_table of string
      (** CHECK TABLE t: cross-validate every index against the heap *)
  | Repair_table of { table : string; index : string option }
      (** REPAIR TABLE t (every damaged index) or REPAIR INDEX i ON t:
          online rebuild through the session scheduler *)

val agg_name : agg -> string

val operand_to_string : operand -> string
val cond_to_string : cond -> string
val select_to_string : select -> string
(** Render back to parseable SQL: [Parser.parse_select (select_to_string s)]
    reproduces [s] (modulo float formatting).  Used by EXPLAIN output
    and pinned by a round-trip property test. *)

val statement_to_string : statement -> string


(** Deterministic observability registry: named counters, gauges, and
    fixed-bucket histograms.

    Everything is measured in cost units and call counts — never
    wall-clock time — so equal seeds produce byte-identical dumps, and
    a dump can be golden-tested or diffed across runs.

    Metrics are {e observation-only} by contract: recording into a
    registry must never change result sets or charged costs (pinned by
    the qcheck suite in [test/test_metrics.ml]).  Instrumented
    subsystems therefore take a [t option] and skip all work on
    [None]. *)

type t

val create : unit -> t

val labeled : string -> string -> string
(** [labeled name label] is ["name{label}"] — the convention for
    per-file / per-tactic series of one logical metric. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find or register.  Raises [Invalid_argument] if [name] is already
    registered with another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Power-of-four ladder over cost units: spans sub-page-read costs up
    to full scans of the biggest bench tables. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bucket bounds (default
    {!default_buckets}); an extra overflow bucket is added.  Raises
    [Invalid_argument] on empty or non-increasing bounds, or on a
    name registered with another kind.  [buckets] is ignored when the
    histogram already exists. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_counts : histogram -> int array
(** Per-bucket counts (a copy); length = bounds + 1 (overflow last). *)

val histogram_bounds : histogram -> float array

(** {1 Snapshots} — deterministic, name-sorted views *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

val snapshot : t -> (string * value) list
(** Sorted by name: iteration order never depends on hash-table
    internals. *)

val value_to_string : value -> string
val to_string : t -> string
(** One ["name = value"] line per metric, name-sorted. *)

val value_to_json : value -> Json.t
val to_json : t -> Json.t

val is_empty : t -> bool
val reset : t -> unit

(* Deterministic observability registry: named counters, gauges, and
   fixed-bucket histograms.  Everything here is measured in cost units
   and call counts — never wall-clock time — so equal seeds produce
   byte-identical dumps, and a dump can be golden-tested or diffed
   across runs.

   Metrics are *observation-only* by contract: recording into a
   registry must never change result sets or charged costs (pinned by
   the qcheck suite in test/test_metrics.ml).  Instrumented subsystems
   therefore take an [t option] and skip all work on [None]. *)

type counter = { mutable n : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (** strictly increasing upper bucket bounds *)
  counts : int array;  (** length = [Array.length bounds + 1]; last = overflow *)
  mutable sum : float;
  mutable count : int;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* Power-of-four ladder over cost units: spans sub-page-read costs up
   to full scans of the biggest bench tables. *)
let default_buckets =
  [| 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]

let labeled name label = name ^ "{" ^ label ^ "}"

let find_or_create t name make match_ =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match match_ m with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Metrics: %s registered with another kind" name))
  | None ->
      let m, v = make () in
      Hashtbl.replace t.tbl name m;
      v

let counter t name =
  find_or_create t name
    (fun () ->
      let c = { n = 0 } in
      (M_counter c, c))
    (function M_counter c -> Some c | _ -> None)

let gauge t name =
  find_or_create t name
    (fun () ->
      let g = { g = 0.0 } in
      (M_gauge g, g))
    (function M_gauge g -> Some g | _ -> None)

let histogram ?(buckets = default_buckets) t name =
  find_or_create t name
    (fun () ->
      let n = Array.length buckets in
      if n = 0 then invalid_arg "Metrics.histogram: empty bucket bounds";
      for i = 1 to n - 1 do
        if buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
      done;
      let h =
        { bounds = Array.copy buckets; counts = Array.make (n + 1) 0; sum = 0.0; count = 0 }
      in
      (M_histogram h, h))
    (function M_histogram h -> Some h | _ -> None)

let incr c = c.n <- c.n + 1
let add c n = c.n <- c.n + n
let counter_value c = c.n

let set g v = g.g <- v
let gauge_value g = g.g

let observe h v =
  let n = Array.length h.bounds in
  let rec place i = if i >= n then n else if v <= h.bounds.(i) then i else place (i + 1) in
  let i = place 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let histogram_count h = h.count
let histogram_sum h = h.sum
let histogram_counts h = Array.copy h.counts
let histogram_bounds h = Array.copy h.bounds

(* --- snapshots ------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { bounds : float array; counts : int array; sum : float; count : int }

(* Sorted by name: iteration order never depends on hash-table
   internals, so dumps are deterministic. *)
let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter c -> Counter c.n
        | M_gauge g -> Gauge g.g
        | M_histogram h ->
            Histogram
              {
                bounds = Array.copy h.bounds;
                counts = Array.copy h.counts;
                sum = h.sum;
                count = h.count;
              }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fnum f = Printf.sprintf "%.6g" f

let value_to_string = function
  | Counter n -> string_of_int n
  | Gauge g -> fnum g
  | Histogram { bounds; counts; sum; count } ->
      let cells =
        Array.to_list
          (Array.mapi
             (fun i c ->
               let hi = if i < Array.length bounds then fnum bounds.(i) else "+inf" in
               Printf.sprintf "<=%s:%d" hi c)
             counts)
      in
      Printf.sprintf "count=%d sum=%s [%s]" count (fnum sum) (String.concat " " cells)

let to_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (name ^ " = " ^ value_to_string v ^ "\n"))
    (snapshot t);
  Buffer.contents buf

let value_to_json = function
  | Counter n -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
  | Gauge g -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num g) ]
  | Histogram { bounds; counts; sum; count } ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("count", Json.Num (float_of_int count));
          ("sum", Json.Num sum);
          ("bounds", Json.Arr (Array.to_list (Array.map (fun b -> Json.Num b) bounds)));
          ( "counts",
            Json.Arr (Array.to_list (Array.map (fun c -> Json.Num (float_of_int c)) counts)) );
        ]

let to_json t = Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) (snapshot t))

let is_empty t = Hashtbl.length t.tbl = 0

let reset t = Hashtbl.reset t.tbl

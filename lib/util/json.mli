(** Minimal JSON tree, printer, and parser — just enough for the
    machine-readable bench output ([BENCH_<id>.json]) and the CI
    regression gate that consumes it, with zero external dependencies.
    Numbers are represented as floats (like JSON itself); integral
    values print without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents two spaces per level. *)

val of_string : string -> t
(** @raise Parse_error on malformed input (including trailing
    garbage). *)

(** {1 Accessors} — total, [None] on shape mismatch *)

val member : string -> t -> t option
(** First field of that name in an [Obj]; [None] otherwise. *)

val to_num : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

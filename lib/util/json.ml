(* Minimal JSON tree, printer, and parser — just enough for the
   machine-readable bench output (BENCH_<id>.json) and the CI
   regression gate that consumes it, with zero external dependencies.
   Numbers are represented as floats (like JSON itself); integral
   values print without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing -------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected %C at %d, got %C" ch c.pos x
  | None -> fail "expected %C at %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "malformed literal at %d" c.pos

(* Encode a Unicode code point as UTF-8 (enough for \uXXXX escapes;
   surrogate pairs outside the BMP are not combined). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail "unterminated escape"
        | Some esc ->
            c.pos <- c.pos + 1;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                c.pos <- c.pos + 4;
                let cp =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some cp -> cp
                  | None -> fail "malformed \\u escape %s" hex
                in
                add_utf8 buf cp
            | e -> fail "unknown escape \\%c" e);
            loop ())
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let number_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && number_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let span = String.sub c.src start (c.pos - start) in
  match float_of_string_opt span with
  | Some f -> f
  | None -> fail "malformed number %S at %d" span start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at %d" c.pos
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let of_string src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail "trailing input at %d" c.pos;
  v

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None

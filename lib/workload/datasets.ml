open Rdb_data
open Rdb_engine
module Prng = Rdb_util.Prng

let fresh_db ?(pool_capacity = 128) ?(pool_shards = 1) () =
  Database.create ~pool_capacity ~pool_shards ()

let families ?(rows = 20000) ?(seed = 1) db =
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "AGE" Value.T_int;
        Schema.col "NAME" Value.T_str;
        Schema.col "CITY" Value.T_str;
        Schema.col "PROFILE" Value.T_str;
      ]
  in
  let t = Database.create_table db ~name:"FAMILIES" schema in
  let rng = Prng.create ~seed in
  let cities = [| "nashua"; "boston"; "keene"; "concord"; "salem"; "dover" |] in
  (* A realistic record width (~250 bytes) so that pages hold a few
     dozen records and random fetches cost what they should. *)
  let profile i = String.init 200 (fun k -> Char.chr (97 + ((i + k) mod 26))) in
  for i = 0 to rows - 1 do
    let age = Prng.int rng 101 in
    ignore
      (Table.insert t
         [|
           Value.int i;
           Value.int age;
           Value.str (Printf.sprintf "family-%06d" i);
           Value.str (Prng.choose rng cities);
           Value.str (profile i);
         |])
  done;
  ignore (Table.create_index t ~name:"AGE_IDX" ~columns:[ "AGE" ] ());
  t

let orders ?(rows = 30000) ?(seed = 2) ?(customers = 2000) ?(products = 500) ?(days = 365)
    ?(theta = 1.0) db =
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "CUSTOMER" Value.T_int;
        Schema.col "PRODUCT" Value.T_int;
        Schema.col "DAY" Value.T_int;
        Schema.col "PRICE" Value.T_int;
        Schema.col "QTY" Value.T_int;
      ]
  in
  let t = Database.create_table db ~name:"ORDERS" schema in
  let rng = Prng.create ~seed in
  let zc = Zipf.create ~n:customers ~theta in
  let zp = Zipf.create ~n:products ~theta in
  (* Insert in day order: DAY_IDX ends up clustered. *)
  for i = 0 to rows - 1 do
    let day = i * days / rows in
    ignore
      (Table.insert t
         [|
           Value.int i;
           Value.int (Zipf.draw zc rng);
           Value.int (Zipf.draw zp rng);
           Value.int day;
           Value.int (10 + Prng.int rng 4990);
           Value.int (1 + Prng.int rng 20);
         |])
  done;
  ignore (Table.create_index t ~name:"CUST_IDX" ~columns:[ "CUSTOMER" ] ());
  ignore (Table.create_index t ~name:"PROD_IDX" ~columns:[ "PRODUCT" ] ());
  ignore (Table.create_index t ~name:"DAY_IDX" ~columns:[ "DAY" ] ());
  ignore (Table.create_index t ~name:"PRICE_IDX" ~columns:[ "PRICE" ] ());
  t

let sensors ?(rows = 40000) ?(seed = 4) ?(correlation_noise = 200) db =
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "T" Value.T_int;
        Schema.col "A" Value.T_int;
        Schema.col "B" Value.T_int;
      ]
  in
  let t = Database.create_table db ~name:"SENSORS" schema in
  let rng = Prng.create ~seed in
  for i = 0 to rows - 1 do
    let a = Prng.int rng 10_000 in
    let b = a + Prng.int_in rng (-correlation_noise) correlation_noise in
    ignore (Table.insert t [| Value.int i; Value.int i; Value.int a; Value.int b |])
  done;
  ignore (Table.create_index t ~name:"A_IDX" ~columns:[ "A" ] ());
  ignore (Table.create_index t ~name:"B_IDX" ~columns:[ "B" ] ());
  ignore (Table.create_index t ~name:"T_IDX" ~columns:[ "T" ] ());
  t

let employees ?(rows = 20000) ?(seed = 3) ?(departments = 40) db =
  let schema =
    Schema.make
      [
        Schema.col "ID" Value.T_int;
        Schema.col "DEPT" Value.T_int;
        Schema.col "SALARY" Value.T_int;
        Schema.col "AGE" Value.T_int;
        Schema.col "NAME" Value.T_str;
      ]
  in
  let t = Database.create_table db ~name:"EMPLOYEES" schema in
  let rng = Prng.create ~seed in
  for i = 0 to rows - 1 do
    let dept = Prng.int rng departments in
    let salary =
      int_of_float (Prng.normal rng ~mean:60000.0 ~stddev:15000.0)
      |> Int.max 20000 |> Int.min 200000
    in
    ignore
      (Table.insert t
         [|
           Value.int i;
           Value.int dept;
           Value.int salary;
           Value.int (22 + Prng.int rng 43);
           Value.str (Printf.sprintf "emp-%06d" i);
         |])
  done;
  ignore (Table.create_index t ~name:"DEPT_SAL_IDX" ~columns:[ "DEPT"; "SALARY" ] ());
  ignore (Table.create_index t ~name:"AGE_IDX" ~columns:[ "AGE" ] ());
  t

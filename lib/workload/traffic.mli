(** Seeded multi-query traffic for the session scheduler.

    Generates a deterministic arrival sequence of mixed query templates
    against the ORDERS dataset: host-variable range sweeps, point
    lookups on the Zipf-skewed columns, covered ORs (union tactic),
    multi-index ANDs (Jscan), and fast-first LIMIT probes.  Each spec
    is plain data — a predicate plus bindings — so this library stays
    below [rdb_core]; the scheduler's callers turn specs into
    retrieval requests. *)

open Rdb_engine

type spec = {
  label : string;
  pred : Predicate.t;
  env : Predicate.env;
  order_by : string list;
  limit : int option;
  fast_first : bool;  (** hint: run under the fast-first goal *)
}

val orders_mix :
  ?customers:int ->
  ?products:int ->
  ?days:int ->
  ?price_max:int ->
  seed:int ->
  count:int ->
  unit ->
  spec list
(** [count] specs in a seeded shuffled arrival order, cycling through
    the five templates with seeded parameters.  Bounds default to the
    {!Datasets.orders} defaults. *)

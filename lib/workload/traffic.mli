(** Seeded multi-query traffic for the session scheduler.

    Generates a deterministic arrival sequence of mixed query templates
    against the ORDERS dataset: host-variable range sweeps, point
    lookups on the Zipf-skewed columns, covered ORs (union tactic),
    multi-index ANDs (Jscan), and fast-first LIMIT probes.  Each spec
    is plain data — a predicate plus bindings — so this library stays
    below [rdb_core]; the scheduler's callers turn specs into
    retrieval requests. *)

open Rdb_engine

type spec = {
  label : string;
  pred : Predicate.t;
  env : Predicate.env;
  order_by : string list;
  limit : int option;
  fast_first : bool;  (** hint: run under the fast-first goal *)
}

type arrival = {
  spec : spec;
  arrive_at : int;  (** scheduler grant tick at which the query arrives *)
  quota : float option;
      (** declared admission-ordering quota (heavy-tailed); [None] =
          unbounded work declared *)
  deadline : float option;  (** cost deadline the submitter attaches, if any *)
}

val orders_mix :
  ?customers:int ->
  ?products:int ->
  ?days:int ->
  ?price_max:int ->
  seed:int ->
  count:int ->
  unit ->
  spec list
(** [count] specs in a seeded shuffled arrival order, cycling through
    the five templates with seeded parameters.  Bounds default to the
    {!Datasets.orders} defaults. *)

val storm :
  ?customers:int ->
  ?products:int ->
  ?days:int ->
  ?price_max:int ->
  ?theta:float ->
  ?deadline_pct:int ->
  ?waves:int ->
  ?drain_gap:int ->
  seed:int ->
  count:int ->
  unit ->
  arrival list
(** A deterministic overload storm: [count] arrivals over the same five
    templates, in arrival order.  Arrival ticks advance by Zipf-drawn
    gaps (mostly 0 — bursts — with a heavy tail of quiet stretches);
    declared quotas follow a Zipf mix with skew [theta] (default 1.0):
    mostly small bounded quotas, a heavy tail of large or unbounded
    declarations; [deadline_pct] percent of queries (default 25) carry
    a tight-skewed cost deadline, including some that are 0 (timed out
    on arrival).  [waves] (default 1) splits the count into that many
    equal fronts separated by a [drain_gap]-tick quiet stretch
    (default 64) — the thousand-session storm shape; at the default
    the stream is byte-identical to a single front.  Everything flows
    from [seed]: equal seeds give identical storms. *)

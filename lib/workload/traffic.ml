open Rdb_data
open Rdb_engine
module Prng = Rdb_util.Prng

type spec = {
  label : string;
  pred : Predicate.t;
  env : Predicate.env;
  order_by : string list;
  limit : int option;
  fast_first : bool;
}

(* Zipf-flavoured draw without the full sampler: low ids are hot. *)
let skewed rng n = Prng.int rng (1 + Prng.int rng n)

let orders_mix ?(customers = 2000) ?(products = 500) ?(days = 365) ?(price_max = 5000)
    ~seed ~count () =
  let rng = Prng.create ~seed in
  let open Predicate in
  let template i =
    match i mod 5 with
    | 0 ->
        (* host-variable range sweep: selectivity unknown at compile
           time — the paper's §4 motivating shape *)
        let p = Prng.int rng price_max in
        {
          label = Printf.sprintf "hostvar-price>=%d" p;
          pred = param_cmp "PRICE" Ge "P";
          env = [ ("P", Value.int p) ];
          order_by = [];
          limit = None;
          fast_first = false;
        }
    | 1 ->
        let c = skewed rng customers in
        {
          label = Printf.sprintf "point-cust=%d" c;
          pred = "CUSTOMER" =% Value.int c;
          env = [];
          order_by = [];
          limit = None;
          fast_first = false;
        }
    | 2 ->
        let c = skewed rng customers and p = skewed rng products in
        {
          label = Printf.sprintf "or-cust=%d-prod=%d" c p;
          pred = Or [ "CUSTOMER" =% Value.int c; "PRODUCT" =% Value.int p ];
          env = [];
          order_by = [];
          limit = None;
          fast_first = false;
        }
    | 3 ->
        (* multi-index AND: the Jscan shape *)
        let c = skewed rng customers in
        let lo = Prng.int rng days in
        let hi = min (days - 1) (lo + 30 + Prng.int rng 60) in
        {
          label = Printf.sprintf "jscan-cust=%d-day[%d,%d]" c lo hi;
          pred =
            And
              [ "CUSTOMER" =% Value.int c; between "DAY" (Value.int lo) (Value.int hi) ];
          env = [];
          order_by = [];
          limit = None;
          fast_first = false;
        }
    | _ ->
        let p = skewed rng products in
        {
          label = Printf.sprintf "limit-prod=%d" p;
          pred = "PRODUCT" =% Value.int p;
          env = [];
          order_by = [];
          limit = Some (5 + Prng.int rng 20);
          fast_first = true;
        }
  in
  let specs = Array.init count template in
  Prng.shuffle rng specs;
  Array.to_list specs

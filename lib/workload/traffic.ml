open Rdb_data
open Rdb_engine
module Prng = Rdb_util.Prng

type spec = {
  label : string;
  pred : Predicate.t;
  env : Predicate.env;
  order_by : string list;
  limit : int option;
  fast_first : bool;
}

type arrival = {
  spec : spec;
  arrive_at : int;
  quota : float option;
  deadline : float option;
}

(* Zipf-flavoured draw without the full sampler: low ids are hot. *)
let skewed rng n = Prng.int rng (1 + Prng.int rng n)

let template rng ~customers ~products ~days ~price_max i =
  let open Predicate in
  match i mod 5 with
  | 0 ->
      (* host-variable range sweep: selectivity unknown at compile
         time — the paper's §4 motivating shape *)
      let p = Prng.int rng price_max in
      {
        label = Printf.sprintf "hostvar-price>=%d" p;
        pred = param_cmp "PRICE" Ge "P";
        env = [ ("P", Value.int p) ];
        order_by = [];
        limit = None;
        fast_first = false;
      }
  | 1 ->
      let c = skewed rng customers in
      {
        label = Printf.sprintf "point-cust=%d" c;
        pred = "CUSTOMER" =% Value.int c;
        env = [];
        order_by = [];
        limit = None;
        fast_first = false;
      }
  | 2 ->
      let c = skewed rng customers and p = skewed rng products in
      {
        label = Printf.sprintf "or-cust=%d-prod=%d" c p;
        pred = Or [ "CUSTOMER" =% Value.int c; "PRODUCT" =% Value.int p ];
        env = [];
        order_by = [];
        limit = None;
        fast_first = false;
      }
  | 3 ->
      (* multi-index AND: the Jscan shape *)
      let c = skewed rng customers in
      let lo = Prng.int rng days in
      let hi = min (days - 1) (lo + 30 + Prng.int rng 60) in
      {
        label = Printf.sprintf "jscan-cust=%d-day[%d,%d]" c lo hi;
        pred =
          And
            [ "CUSTOMER" =% Value.int c; between "DAY" (Value.int lo) (Value.int hi) ];
        env = [];
        order_by = [];
        limit = None;
        fast_first = false;
      }
  | _ ->
      let p = skewed rng products in
      {
        label = Printf.sprintf "limit-prod=%d" p;
        pred = "PRODUCT" =% Value.int p;
        env = [];
        order_by = [];
        limit = Some (5 + Prng.int rng 20);
        fast_first = true;
      }

let orders_mix ?(customers = 2000) ?(products = 500) ?(days = 365) ?(price_max = 5000)
    ~seed ~count () =
  let rng = Prng.create ~seed in
  let specs =
    Array.init count (template rng ~customers ~products ~days ~price_max)
  in
  Prng.shuffle rng specs;
  Array.to_list specs

let storm ?(customers = 2000) ?(products = 500) ?(days = 365) ?(price_max = 5000)
    ?(theta = 1.0) ?(deadline_pct = 25) ?(waves = 1) ?(drain_gap = 64) ~seed ~count () =
  if count < 0 then invalid_arg "Traffic.storm: count < 0";
  if deadline_pct < 0 || deadline_pct > 100 then
    invalid_arg "Traffic.storm: deadline_pct outside [0, 100]";
  if waves < 1 then invalid_arg "Traffic.storm: waves < 1";
  if drain_gap < 0 then invalid_arg "Traffic.storm: drain_gap < 0";
  let rng = Prng.create ~seed in
  (* Quota declarations are the heavy tail: most sessions declare a
     small bounded quota, a Zipf tail declares large or unbounded
     work — exactly the mix shed-largest-quota is meant to triage. *)
  let quota_zipf = Zipf.create ~n:32 ~theta in
  (* Arrival gaps are Zipf too: rank 1 (gap 0) dominates, so arrivals
     come in bursts — the storm front — with occasional quiet
     stretches that let the pool drain. *)
  let gap_zipf = Zipf.create ~n:8 ~theta:1.2 in
  let at = ref 0 in
  (* Wave structure for thousand-session storms: the count splits into
     [waves] equal fronts separated by a [drain_gap] quiet stretch.  At
     the default [waves = 1] no boundary ever fires, so the arrival
     stream (and every PRNG draw) is byte-identical to the single-front
     storm. *)
  let wave_len = if waves = 1 then max 1 count else (count + waves - 1) / waves in
  List.init count (fun i ->
      let spec = template rng ~customers ~products ~days ~price_max i in
      if i > 0 && i mod wave_len = 0 then at := !at + drain_gap;
      at := !at + (Zipf.draw gap_zipf rng - 1);
      let rank = Zipf.draw quota_zipf rng in
      let quota =
        if rank >= 24 then None else Some (25.0 *. float_of_int rank)
      in
      let deadline =
        if Prng.int rng 100 < deadline_pct then
          (* gap-distributed deadlines: mostly tight (0 times out on
             arrival, 15 after a grant or two), occasionally roomy *)
          Some (float_of_int (Zipf.draw gap_zipf rng - 1) *. 15.0)
        else None
      in
      { spec; arrive_at = !at; quota; deadline })

(** Canonical benchmark datasets.

    Three tables sized for laptop-scale runs that still show I/O
    effects (tables several times larger than the default buffer
    pool):

    - FAMILIES — the §4 motivating table: AGE in [0,100] uniform,
      indexed; used for the host-variable experiment.
    - ORDERS — multi-index OLTP-ish table with Zipf-skewed CUSTOMER and
      PRODUCT columns, a clustered DAY column (insertion order =
      day order), and a PRICE column; used for the Jscan/tactics
      experiments.
    - EMPLOYEES — a covering-index playground: (DEPT, SALARY) composite
      index covers the salary-by-department queries; used for the
      index-only tactic.

    All generators are deterministic from the seed. *)

open Rdb_engine

val families : ?rows:int -> ?seed:int -> Database.t -> Table.t
(** Columns: ID int, AGE int, NAME str, CITY str, PROFILE str (a
    ~200-byte payload giving realistic record widths).  Index: AGE_IDX
    on AGE. *)

val orders :
  ?rows:int ->
  ?seed:int ->
  ?customers:int ->
  ?products:int ->
  ?days:int ->
  ?theta:float ->
  Database.t ->
  Table.t
(** Columns: ID, CUSTOMER, PRODUCT, DAY, PRICE, QTY (ints).  Indexes:
    CUST_IDX, PROD_IDX, DAY_IDX, PRICE_IDX.  CUSTOMER and PRODUCT are
    Zipf([theta], default 1.0); rows are inserted in DAY order, so
    DAY_IDX is clustered. *)

val employees :
  ?rows:int -> ?seed:int -> ?departments:int -> Database.t -> Table.t
(** Columns: ID, DEPT, SALARY, AGE (ints), NAME (str).  Indexes:
    DEPT_SAL_IDX on (DEPT, SALARY) — covering for dept/salary queries —
    and AGE_IDX on AGE. *)

val sensors :
  ?rows:int -> ?seed:int -> ?correlation_noise:int -> Database.t -> Table.t
(** Columns: ID, T (insertion-ordered time), A (uniform in [0, 10000)),
    B = A + uniform noise in [-correlation_noise, +correlation_noise]
    (default 200) — i.e. A and B are strongly *positively correlated*,
    the case where the independence assumption underestimates
    intersections the most (§2's unknown-correlation motivation).
    Indexes: A_IDX, B_IDX, T_IDX. *)

val fresh_db : ?pool_capacity:int -> ?pool_shards:int -> unit -> Database.t

open Rdb_data
open Rdb_engine
open Rdb_storage

type t = {
  table : Table.t;
  meter : Cost.t;
  rids : Rid.t array;
  restriction : Predicate.t;
  exclude : Rid.t -> bool;
  cache : Heap_file.fetch_cache;
      (** sorted RIDs revisit pages back to back; valid for one batch
          quantum — the driving cursor's [on_yield] invalidates it *)
  mutable pos : int;
  mutable skipped : int;
}

let create table meter ~rids ~restriction ~exclude =
  {
    table;
    meter;
    rids;
    restriction;
    exclude;
    cache = Heap_file.fetch_cache ();
    pos = 0;
    skipped = 0;
  }

let step t =
  if t.pos >= Array.length t.rids then Scan.Done
  else begin
    let rid = t.rids.(t.pos) in
    Cost.charge_cpu t.meter 1;
    if t.exclude rid then begin
      t.pos <- t.pos + 1;
      t.skipped <- t.skipped + 1;
      Scan.Continue
    end
    else begin
      (* Advance only after the fetch succeeds: a faulted quantum
         leaves [pos] on this RID so stepping again retries it. *)
      match Heap_file.fetch_via (Table.heap t.table) t.meter t.cache rid with
      | exception Fault.Injected f -> Scan.Failed f
      | None ->
          t.pos <- t.pos + 1;
          Scan.Continue
      | Some row ->
          t.pos <- t.pos + 1;
          if Predicate.eval t.restriction (Table.schema t.table) row then
            Scan.Deliver (rid, row)
          else Scan.Continue
    end
  end

let drop_cache t = Heap_file.invalidate_cache t.cache
let meter t = t.meter
let skipped_delivered t = t.skipped

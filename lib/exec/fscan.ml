open Rdb_btree
open Rdb_engine
open Rdb_rid
open Rdb_storage

type t = {
  table : Table.t;
  meter : Cost.t;
  idx : Table.index;
  restriction : Predicate.t;
  prefilter : Predicate.t;  (** restriction part decidable on the key alone *)
  cursor : Btree.multi_cursor;
  cache : Heap_file.fetch_cache;
      (** page-handle cache for the record fetches; valid for one
          batch quantum — the cursor's [on_yield] invalidates it *)
  mutable filter : Filter.t option;
  mutable pending : (Btree.key * Rdb_data.Rid.t) option;
      (** entry pulled from the cursor whose quantum has not completed:
          the cursor has already moved past it, so a faulted heap fetch
          must find it here on retry rather than lose it *)
  mutable fetched : int;
  mutable rejected : int;
  mutable saved : int;
}

let create table meter (cand : Scan.candidate) ~restriction =
  if not (Predicate.is_bound restriction) then invalid_arg "Fscan.create: unbound restriction";
  {
    table;
    meter;
    idx = cand.Scan.idx;
    restriction;
    prefilter = restriction;
    cursor = Btree.multi_cursor cand.Scan.idx.Table.tree meter cand.Scan.ranges;
    cache = Heap_file.fetch_cache ();
    filter = None;
    pending = None;
    fetched = 0;
    rejected = 0;
    saved = 0;
  }

let set_filter t f = t.filter <- Some f

let step t =
  match
    match t.pending with
    | Some e -> Some e
    | None -> (
        match Btree.multi_next t.cursor with
        | None -> None
        | Some e ->
            (* The cursor has moved past [e]; park it so a faulted
               heap fetch below does not lose it. *)
            t.pending <- Some e;
            Cost.charge_cpu t.meter 1;
            Some e)
  with
  | exception Fault.Injected f -> Scan.Failed f
  | None -> Scan.Done
  | Some (key, rid) ->
      let schema = Table.schema t.table in
      let synth = Scan.synthetic_row t.table t.idx key in
      (* Reject on the key alone when the restriction definitely
         fails, then through the background filter, then fetch. *)
      if not (Predicate.eval_maybe t.prefilter schema synth) then begin
        t.pending <- None;
        Scan.Continue
      end
      else begin
        match t.filter with
        | Some f when not (Filter.mem f rid) ->
            t.pending <- None;
            t.saved <- t.saved + 1;
            Scan.Continue
        | _ -> (
            match Heap_file.fetch_via (Table.heap t.table) t.meter t.cache rid with
            | exception Fault.Injected f -> Scan.Failed f
            | None ->
                t.pending <- None;
                t.fetched <- t.fetched + 1;
                Scan.Continue
            | Some row ->
                t.pending <- None;
                t.fetched <- t.fetched + 1;
                if Predicate.eval t.restriction schema row then Scan.Deliver (rid, row)
                else begin
                  t.rejected <- t.rejected + 1;
                  Scan.Continue
                end)
      end

let drop_cache t = Heap_file.invalidate_cache t.cache

let cursor t =
  Scan.cursor_of_step
    ~cost:(fun () -> Cost.total t.meter)
    ~on_yield:(fun () -> drop_cache t)
    (fun () -> step t)

let meter t = t.meter
let fetched t = t.fetched
let rejected_after_fetch t = t.rejected
let saved_by_filter t = t.saved
let index_name t = t.idx.Table.idx_name

(** Jscan — joint scan of fetch-needed indexes (§6, Figure 6).

    Scans the candidate indexes in the initial stage's order (roughly
    ascending selectivity).  Each scan builds a RID list, filtered
    through the previous completed list's filter, so each completed
    list is the intersection of all completed scans.  Two competition
    mechanisms terminate unproductive scans:

    - {e two-stage}: the projected cost of retrieving by the final RID
      list (extrapolated from the current list and scan progress, via
      Yao's formula) approaches — reaches [switch_ratio] (default
      0.95) of — the {e guaranteed best} cost g, where g is the
      cheaper of a sequential scan and retrieval by the last completed
      list;
    - {e direct}: the scan's own cost exceeds [scan_cost_cap] (default
      0.25) of g — the case where filters reject almost everything and
      the scan itself dominates.

    Optionally, two adjacent indexes are scanned simultaneously at
    equal speed within the memory buffer; the first range to exhaust
    wins, delivers the filter, and the loser's partial list is
    refiltered in memory and continues (§6's dynamic reordering).

    The outcome is either a final sorted RID list or a recommendation
    to run Tscan.  Accepted RIDs are continuously exposed for
    *borrowing* by a fast-first foreground (§7). *)

open Rdb_data
open Rdb_engine
open Rdb_storage

type config = {
  switch_ratio : float;
  scan_cost_cap : float;
  check_every : int;  (** competition-check cadence, in entries *)
  memory_budget : int;  (** max buffered RIDs per list before spilling *)
  simultaneous : bool;  (** enable adjacent-index simultaneous scans *)
  dynamic : bool;  (** false disables mid-scan competition entirely
                       (the statically-controlled baseline [MoHa90]) *)
  filter_only : bool;
      (** the Jscan output is used purely as a filter (sorted tactic):
          any completed list is delivered, never a Tscan
          recommendation *)
  initial_guaranteed_best : float option;
      (** override for the initial guaranteed-best cost g.  The
          default (None) is the table's Tscan cost — correct when the
          Jscan output drives the retrieval itself; a filter-building
          Jscan competes against the foreground Fscan's remaining cost
          instead (§7 sorted tactic) *)
}

val default_config : config

type outcome =
  | Rid_list of Rid.t array  (** sorted, deduplicated *)
  | Recommend_tscan of string  (** with the reason *)

type t

val create :
  Table.t ->
  Cost.t ->
  config ->
  Trace.t ->
  candidates:Scan.candidate list ->
  t
(** Candidate residuals are evaluated on synthetic key rows with
    [eval_maybe] during the scans; the caller must still evaluate the
    full restriction on fetched rows. *)

val step : t -> [ `Working | `Finished of outcome | `Faulted of Fault.failure ]
(** Idempotent once finished.  [`Faulted] reports a block-access fault
    caught inside the quantum with the scan positions unchanged: the
    caller either steps again (retry, for transient faults) or calls
    {!quarantine} (drop the faulting party, for persistent ones). *)

val quarantine : t -> Fault.failure -> unit
(** Discard whichever party the last [`Faulted] step blamed — a
    running scan (traced as {!Trace.Index_quarantined} plus the usual
    §6 [Scan_discarded]) or the completed list (the final decision then
    degrades to [Recommend_tscan]).  The competition continues with
    the remaining candidates.  No-op if no fault is pending. *)

val faulted_scan : t -> string option
(** Index name blamed by the last [`Faulted] step, if it was a scan. *)

val cursor : t -> Scan.cursor
(** The competition as a row-less batch-quantum cursor: productive
    steps yield no rows (the result is the {!outcome} RID list),
    faults surface as batch status for the driver's policy. *)

val outcome : t -> outcome option
(** [None] until the competition settles. *)

val run : t -> outcome
(** Drain {!cursor} through the shared driver under the
    [retry-transient ⇒ quarantine] {!Tactic.Policy} ladder: transient
    faults retry in place, anything else quarantines the blamed party
    and the competition continues. *)

val borrow : t -> Rid.t option
(** Next not-yet-borrowed accepted RID, if any (fast-first tactic). *)

val guaranteed_best : t -> float
val completed_scans : t -> int
val discarded_scans : t -> int
val meter : t -> Cost.t

open Rdb_btree
open Rdb_data
open Rdb_engine

type step =
  | Deliver of Rid.t * Row.t
  | Continue
  | Done
  | Failed of Rdb_storage.Fault.failure

type candidate = {
  idx : Table.index;
  ranges : Btree.range list;
  residual : Predicate.t;
  est : float;
  est_exact : bool;
}

let synthetic_row table idx (key : Btree.key) =
  let row = Array.make (Schema.arity (Table.schema table)) Value.Null in
  Array.iteri
    (fun pos col_id -> if pos < Array.length key then row.(col_id) <- key.(pos))
    idx.Table.key_ids;
  row

(* --- batch-quantum cursors ------------------------------------------- *)

type status =
  | More
  | Exhausted
  | Faulted of Rdb_storage.Fault.failure

type batch = {
  rows : (Rid.t * Row.t) list;
  cost : float;
  steps : int;
  status : status;
}

type cursor = { next_batch : budget:float -> batch }

let cursor_of_step ~cost ?(max_steps = max_int) ?(on_yield = fun () -> ()) step_fn =
  if max_steps < 1 then invalid_arg "Scan.cursor_of_step: max_steps < 1";
  let next_batch ~budget =
    let start = cost () in
    let rows = ref [] in
    let steps = ref 0 in
    let finish status =
      on_yield ();
      { rows = List.rev !rows; cost = cost () -. start; steps = !steps; status }
    in
    let rec loop () =
      (* Budget is checked *before* each step, never mid-step, and the
         first step is unconditional: a batch always makes progress,
         and [budget = 0.] degenerates to exactly one step — the
         pre-batching protocol, bit for bit. *)
      if !steps > 0 && (!steps >= max_steps || cost () -. start >= budget) then
        finish More
      else begin
        incr steps;
        match step_fn () with
        | Deliver (rid, row) ->
            rows := (rid, row) :: !rows;
            loop ()
        | Continue -> loop ()
        | Done -> finish Exhausted
        | Failed f -> finish (Faulted f)
      end
    in
    loop ()
  in
  { next_batch }

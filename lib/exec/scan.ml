open Rdb_btree
open Rdb_data
open Rdb_engine

type step =
  | Deliver of Rid.t * Row.t
  | Continue
  | Done
  | Failed of Rdb_storage.Fault.failure

type candidate = {
  idx : Table.index;
  ranges : Btree.range list;
  residual : Predicate.t;
  est : float;
  est_exact : bool;
}

let synthetic_row table idx (key : Btree.key) =
  let row = Array.make (Schema.arity (Table.schema table)) Value.Null in
  Array.iteri
    (fun pos col_id -> if pos < Array.length key then row.(col_id) <- key.(pos))
    idx.Table.key_ids;
  row

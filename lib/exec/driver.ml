(* The one generic cursor driver.

   Every execution loop in the system — Retrieval quanta, Uscan/Jscan
   completion runs, Repair batches, Session grants — pumps a
   Scan.cursor through this module.  The driver owns the mechanics
   every loop used to reimplement: consecutive-fault counting and the
   dispatch to a caller-supplied fault policy.  Policies stay with the
   callers (retrieval quarantines and falls back; union machinery
   abandons; repair gives up) because *what* to do about a fault is
   strategy knowledge — *when* to ask is not. *)

type decision =
  | Retry
  | Absorb
  | Stop

type policy = { on_fault : Rdb_storage.Fault.failure -> consec:int -> decision }

type t = {
  cursor : Scan.cursor;
  policy : policy;
  mutable consec : int;  (* consecutive faults without a successful step *)
}

let make cursor policy = { cursor; policy; consec = 0 }
let consec_faults d = d.consec

type progress =
  | More
  | Exhausted
  | Stopped of Rdb_storage.Fault.failure

let pump d ~budget ~on_rows =
  let b = d.cursor.Scan.next_batch ~budget in
  (* Rows first: a batch that delivered rows and then faulted must
     hand those rows to the consumer *before* the policy runs — a
     fallback scan re-covering them would otherwise redeliver. *)
  on_rows b;
  match b.Scan.status with
  | Scan.More ->
      d.consec <- 0;
      More
  | Scan.Exhausted ->
      d.consec <- 0;
      Exhausted
  | Scan.Faulted f -> (
      (* Any successful step inside the batch breaks the consecutive
         run, exactly as step-at-a-time pumping would have. *)
      if b.Scan.steps > 1 then d.consec <- 0;
      d.consec <- d.consec + 1;
      match d.policy.on_fault f ~consec:d.consec with
      | Retry -> More
      | Absorb ->
          d.consec <- 0;
          More
      | Stop ->
          d.consec <- 0;
          Stopped f)

let drain d ~budget ~on_rows =
  let rec loop () =
    match pump d ~budget ~on_rows with
    | More -> loop ()
    | Exhausted -> Ok ()
    | Stopped f -> Error f
  in
  loop ()

(* Cost-clocked grant loop: the shape Session used to duplicate for
   queries and repairs.  All three bounds are checked before each
   iteration (a spent budget grants zero steps), and [steps] counts
   [step] invocations — pump calls, not scan steps. *)
let clocked_loop ~spent ~budget ~max_steps ~stop ~step =
  let start = spent () in
  let steps = ref 0 in
  let rec loop () =
    if stop () || spent () -. start >= budget || !steps >= max_steps then ()
    else begin
      incr steps;
      match step () with
      | `Continue -> loop ()
      | `Finished -> ()
    end
  in
  loop ()

(** Tscan — full sequential table scan (§4).

    The classical fallback: reads every data page once, evaluates the
    full restriction on every record, delivers immediately.  Its cost
    is flat and certain, which is exactly why it serves as the initial
    "guaranteed best" in Jscan's competition. *)

open Rdb_engine
open Rdb_storage

type t

val create : Table.t -> Cost.t -> Predicate.t -> t
(** The restriction must be bound. *)

val step : t -> Scan.step

val cursor : t -> Scan.cursor
(** The scan as a batch-quantum cursor (the uniform driver
    interface). *)

val meter : t -> Cost.t
val examined : t -> int
(** Records looked at so far. *)

(** Sscan — self-sufficient (covering) index scan (§4).

    When the index key contains every column the query touches, the
    index scan alone selects and delivers the result: no record
    fetches ever.  Rows are delivered as synthetic rows (key columns
    filled, the rest NULL), in index-key order. *)

open Rdb_engine
open Rdb_storage

type t

val create : Table.t -> Cost.t -> Scan.candidate -> restriction:Predicate.t -> t
(** [restriction] is the full bound table restriction; it must
    reference only columns of the candidate index. *)

val step : t -> Scan.step

val cursor : t -> Scan.cursor
(** The scan as a batch-quantum cursor (the uniform driver
    interface). *)

val meter : t -> Cost.t
val delivered : t -> int
val index_name : t -> string

(** Fscan — fetch-needed index scan with immediate record fetches
    (§4): the classical indexed retrieval.  Delivers in index-key
    order, which makes it the order-providing foreground of the sorted
    tactic (§7).

    A filter can be attached *mid-scan* (the sorted tactic does this
    when the background Jscan completes): from then on candidate RIDs
    failing the filter are rejected before the record fetch — the
    "extra Jscan-supported filtering [that] may eliminate a large
    number of record fetches". *)

open Rdb_engine
open Rdb_rid
open Rdb_storage

type t

val create : Table.t -> Cost.t -> Scan.candidate -> restriction:Predicate.t -> t

val set_filter : t -> Filter.t -> unit

val step : t -> Scan.step

val cursor : t -> Scan.cursor
(** The scan as a batch-quantum cursor.  Record fetches inside one
    batch share a page-handle cache ({!Rdb_storage.Heap_file.fetch_via});
    the cursor invalidates it on every batch boundary. *)

val drop_cache : t -> unit
(** Invalidate the fetch cache.  Callers driving [step] directly must
    call this whenever control leaves their quantum. *)

val meter : t -> Cost.t

val fetched : t -> int
(** Record fetches performed. *)

val rejected_after_fetch : t -> int
(** Fetches wasted on rows failing the full restriction — the fast-
    first tactic's "only substantial overhead". *)

val saved_by_filter : t -> int
(** Fetches avoided thanks to the attached filter. *)

val index_name : t -> string

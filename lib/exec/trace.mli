(** Execution trace events.

    The dynamic optimizer's value is in its run-time decisions; traces
    make them observable.  They power the EXPLAIN output of the shell,
    the flow tests that pin the Figure 4 / Figure 6 control flow, and
    the benchmark reports on strategy switching. *)

type event =
  | Feedback_applied of { index : string; raw : float; corrected : float }
      (** the feedback store scaled an inexact descent estimate before
          it was announced ([Estimated] then carries [corrected]);
          cost-only — exact estimates are never corrected *)
  | Estimated of { index : string; estimate : float; exact : bool; nodes : int }
  | Empty_range of { index : string }
      (** §5: retrieval cancelled outright *)
  | Shortcut_estimation of { index : string; estimate : float }
      (** §5: very short range found, estimation stopped early *)
  | Tactic_chosen of { tactic : string; reason : string }
  | Scan_started of { index : string }
  | Scan_discarded of { index : string; reason : string }
      (** §6: two-stage or direct competition fired *)
  | Scan_completed of { index : string; kept : int; scanned : int }
  | List_spilled of { index : string; at : int }
  | Simultaneous_started of { primary : string; secondary : string }
  | Simultaneous_winner of { index : string }
  | Use_tscan of { reason : string }
  | Foreground_stopped of { reason : string }
  | Background_stopped of { reason : string }
  | Final_stage of { rids : int; filtered_delivered : int }
  | Retrieval_done of { rows : int; cost : float }
  | Fault_detected of { site : string; fault : string }
      (** a block access faulted during this retrieval *)
  | Fault_retry of { site : string; attempt : int; penalty : int }
      (** transient fault retried after a cost-charged backoff *)
  | Index_quarantined of { index : string; fault : string }
      (** a faulting index path was discarded, §6-style, and the
          retrieval continued without it *)
  | Fallback_tscan of { reason : string }
      (** foreground switched to the guaranteed-safe sequential scan *)
  | Query_aborted of { fault : string }
      (** the heap itself was unreadable: no degradation possible *)
  | Quota_exceeded of { spent : float; quota : float }
      (** per-query cost-quota governor cancelled the retrieval *)
  | Deadline_exceeded of { spent : float; deadline : float }
      (** a scheduler-imposed cost deadline cancelled the session at a
          grant boundary; the rows delivered before it stand *)
  | Span_begin of { span : string }
      (** span-style tracing: a named phase (plan, execute, an arm of a
          competition) opened; the matching [Span_end] carries its
          actuals *)
  | Span_end of { span : string; cost : float; rows : int }
      (** the phase closed after charging [cost] units and delivering
          [rows] rows — the per-node "actual" that EXPLAIN ANALYZE
          prints next to the estimates *)
  | Health_transition of { structure : string; from_ : string; to_ : string; reason : string }
      (** a storage structure moved through the self-healing state
          machine (states rendered as strings to keep exec below
          engine-level types) *)
  | Repair_started of { index : string }
      (** an online index rebuild was admitted *)
  | Repair_done of { index : string; entries : int; cost : float; ok : bool }
      (** the rebuild finished: [ok] means the new tree was swapped in *)
  | Crash of { epoch : int; tick : int; lost : int }
      (** the process died at a grant boundary, losing [lost]
          non-terminal submissions (crash–restart model, DESIGN.md
          §15) *)
  | Orphan_discarded of { index : string; side_file : int }
      (** restart recovery found an uncommitted [Building] rebuild
          record and dropped its side tree *)
  | Quarantine_restored of { structure : string; escalations : int }
      (** recovery reconstructed a quarantine from a persisted
          manifest verdict, backoff re-derived from [escalations] *)
  | Rebuild_resubmitted of { index : string }
      (** recovery queued a fresh rebuild for an orphaned or
          quarantined index in the next epoch *)
  | Reissued of { label : string; epoch : int }
      (** a submission lost to a crash was re-admitted from the
          journal in [epoch] *)

type t

val create : unit -> t
val emit : t -> event -> unit
val events : t -> event list
val count : t -> (event -> bool) -> int
val event_to_string : event -> string
val pp : Format.formatter -> t -> unit

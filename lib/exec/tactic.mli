(** Tactic combinators — LCF-style tacticals over step tactics (§2–§4,
    DESIGN.md §17).

    The paper's strategies are {e compositions}: competition arbitrates
    rivals, fast-first chains into a total-time finish, degradation
    ladders try one recourse after another.  This module makes those
    compositions first-class: a {!t} is a resumable quantum function
    (each call advances the strategy by one {!Scan.step}), and the
    combinators assemble quantum functions the way THEN / ORELSE /
    REPEAT assemble LCF tactics.  {!Rdb_core.Retrieval} builds every
    multi-phase machine from these; the {!Policy} sub-algebra plays the
    same role for {!Driver} fault policies.

    Laws below are stated over the step stream a tactic produces when
    pumped to completion.  All combinators preserve the step-protocol
    contract: [Done] is idempotent, and a tactic yielding [Failed]
    leaves its position unchanged so the next call retries the same
    access. *)

open Rdb_data
open Rdb_storage

type t = unit -> Scan.step
(** One quantum of work.  The existing step functions ([Tscan.step],
    [Sscan.step], …) are tactics as-is; cursors are obtained through
    {!Scan.cursor_of_step}. *)

val halt : t
(** Yields [Done] forever.  Identity for {!then_}: [then_ t (fun () ->
    halt)] delivers exactly the rows of [t] (one extra [Continue]
    quantum at the seam). *)

val then_ : t -> (unit -> t) -> t
(** [then_ first next]: step [first] until it yields [Done]; that
    quantum builds the successor by running [next ()] (side effects —
    e.g. constructing a final stage from the first phase's outcome —
    happen here, exactly once) and yields [Continue]; every later
    quantum steps the successor.  Laws: every row of [first] precedes
    every row of the successor; [first]'s [Done] is consumed as one
    [Continue] (a phase switch is a quantum of work, never a lost
    row); faults from either phase surface unchanged. *)

val orelse : t -> (Fault.failure -> t) -> t
(** [orelse tac handler]: step [tac] until its first [Failed f]; that
    quantum switches permanently to [handler f] and yields [Continue].
    Laws: every row [tac] produced before its fault stands (mirroring
    the delivered-rows invariant of retrieval's Tscan fallback —
    compose with {!distinct} when the arms can overlap); exactly one
    switch ever happens; failures from the handler propagate. *)

val race :
  choose:(unit -> [ `Left | `Right ]) -> left:t -> right:t -> t
(** [race ~choose ~left ~right]: each quantum, exactly one arm
    advances — the one [choose ()] names (the paper's §3 proportional
    competition: the predicate compares charged costs).  The advancing
    arm's step is the race's step, so [Done] from the stepped arm ends
    the race and a fault is blamed on the arm that faulted.  Arms
    self-retire by flipping the state [choose] reads. *)

val preempt : (unit -> t option) -> t -> t
(** [preempt probe tac]: each quantum, ask [probe ()] first; the first
    [Some successor] switches permanently to the successor (the
    mid-flight takeover of §7's index-only tactic: a finished
    background replaces the foreground the moment its sure list wins).
    Until then, step [tac].  After the switch [probe] is never
    consulted again. *)

val repeat_until : (unit -> bool) -> (unit -> t) -> t
(** [repeat_until pred make]: step the tactic built by [make ()]; at
    each of its [Done] boundaries, finish if [pred ()] holds, else
    build a fresh tactic with [make ()] and yield [Continue].  Law:
    each restart consumes exactly one [Continue] quantum; with [pred =
    fun () -> true] this is the identity (one pass). *)

val abandon_if : (unit -> Fault.failure option) -> t -> t
(** [abandon_if cond tac]: before each quantum, ask [cond ()]; the
    first [Some f] permanently converts the tactic into one that
    yields [Failed f] without stepping [tac] — a predicate (cost cap,
    staleness bound) becomes a fault for the policy ladder to settle,
    the all-or-nothing abandonment shape of {!Uscan}. *)

val limit : int -> t -> t
(** [limit n tac]: deliver at most [n] rows, then yield [Done] without
    stepping [tac] further.  Raises [Invalid_argument] if [n < 0].
    [limit max_int] is the identity. *)

val distinct : (Rid.t, unit) Hashtbl.t -> t -> t
(** [distinct seen tac]: suppress (as [Continue]) any [Deliver] whose
    RID is already in [seen], recording delivered RIDs as they pass.
    Makes overlapping {!orelse} arms safe: the fallback arm re-covers
    the faulted arm's ground without redelivering.  Identity when [tac]
    never repeats a RID and [seen] starts empty. *)

val with_policy : Driver.policy -> Scan.cursor -> Scan.cursor
(** A {!Driver} fault policy as a cursor transformer: batches pass
    through with rows, cost, and steps unchanged, but the status
    reflects the policy's settlement — a retried or absorbed fault
    reads [More] (pump again), and [Faulted] surfaces only when the
    policy stopped.  Consecutive-fault counting lives in the embedded
    driver and persists across batches, exactly as if the caller had
    pumped {!Driver.make} directly. *)

(** Fault policies as composable ladders.  A {!Policy.rung} is one
    recourse that either decides a fault or declines it; {!Policy.orelse}
    tries the left rung first — retrieval's ladder is literally
    [retry ⇒ quarantine ⇒ abort-heap ⇒ tscan-fallback].  Rung names
    double as the EXPLAIN [policy:] line via {!Policy.describe}. *)
module Policy : sig
  type rung

  val rung :
    name:string ->
    (Fault.failure -> consec:int -> Driver.decision option) ->
    rung
  (** One recourse: [None] declines (the next rung is asked), [Some d]
      decides.  A rung's side effects (quarantine, fallback, penalty
      charges) must happen inside the deciding call — exactly one rung
      decides per fault. *)

  val orelse : rung -> rung -> rung
  (** First-deciding-wins; names concatenate for {!describe}. *)

  val stack : rung list -> rung
  (** [orelse] folded left-to-right.  Raises [Invalid_argument] on the
      empty list. *)

  val describe : rung -> string
  (** Rung names joined with [" ⇒ "] — construction is effect-free, so
      describing a stack never runs a recourse. *)

  val retry_transient : rung
  (** Decides [Retry] for transient faults (unboundedly — the faulted
      access keeps its position), declines everything else.  The
      Uscan/Jscan completion-run rung. *)

  val bounded_retry :
    limit:int -> penalize:(Fault.failure -> consec:int -> unit) -> rung
  (** Decides [Retry] for a transient fault while [consec <= limit],
      running [penalize] first (cost-meter backoff charges and retry
      trace); declines persistent faults and exhausted budgets.  Named
      ["retry(<limit>)"] . *)

  val absorb_with : name:string -> (Fault.failure -> unit) -> rung
  (** Always decides [Absorb] after running the action — which must
      redirect the underlying scan (quarantine / abandon / fall back)
      so pumping can continue. *)

  val give_up : name:string -> rung
  (** Always decides [Stop]: the terminal rung of ladders with no
      recourse left (repair against unreadable ground truth). *)

  val seal :
    ?observe:(Fault.failure -> consec:int -> unit) ->
    rung ->
    Driver.policy
  (** Close a ladder into a driver policy.  [observe] runs first on
      every fault (the fault-detected trace emission).  A fault no rung
      decides raises [Invalid_argument]: ladders must be total for the
      faults their strategy can produce. *)
end

(** Final retrieval stage (Figure 4's "Fin").

    Executed upon background completion as the alternative to
    foreground delivery: fetch the sorted RID list — sequential-
    friendly, several records per page cost one page access — evaluate
    the full restriction (hashed filters upstream may have admitted
    false positives), and skip rows the foreground already delivered. *)

open Rdb_data
open Rdb_engine
open Rdb_storage

type t

val create :
  Table.t ->
  Cost.t ->
  rids:Rid.t array ->
  restriction:Predicate.t ->
  exclude:(Rid.t -> bool) ->
  t
(** [rids] must be sorted; [exclude rid] is true for already-delivered
    records. *)

val step : t -> Scan.step

val drop_cache : t -> unit
(** Invalidate the page-handle fetch cache.  The driving cursor calls
    this on every batch boundary. *)

val meter : t -> Cost.t
val skipped_delivered : t -> int

open Rdb_engine
open Rdb_storage

type t = {
  table : Table.t;
  meter : Cost.t;
  restriction : Predicate.t;
  cursor : Heap_file.cursor;
  mutable examined : int;
  mutable finished : bool;
}

let create table meter restriction =
  if not (Predicate.is_bound restriction) then invalid_arg "Tscan.create: unbound restriction";
  {
    table;
    meter;
    restriction;
    cursor = Heap_file.scan (Table.heap table) meter;
    examined = 0;
    finished = false;
  }

let step t =
  if t.finished then Scan.Done
  else begin
    (* [Heap_file.next] loads pages before advancing its cursor, so a
       faulted quantum leaves the scan where it was: stepping again
       retries the same page. *)
    match Heap_file.next t.cursor with
    | exception Fault.Injected f -> Scan.Failed f
    | None ->
        t.finished <- true;
        Scan.Done
    | Some (rid, row) ->
        t.examined <- t.examined + 1;
        Cost.charge_cpu t.meter 1;
        if Predicate.eval t.restriction (Table.schema t.table) row then Scan.Deliver (rid, row)
        else Scan.Continue
  end

let cursor t = Scan.cursor_of_step ~cost:(fun () -> Cost.total t.meter) (fun () -> step t)
let meter t = t.meter
let examined t = t.examined

open Rdb_btree
open Rdb_engine
open Rdb_storage

type t = {
  table : Table.t;
  meter : Cost.t;
  idx : Table.index;
  restriction : Predicate.t;
  cursor : Btree.multi_cursor;
  mutable delivered : int;
}

let create table meter (cand : Scan.candidate) ~restriction =
  (* Self-sufficiency precondition. *)
  let needed = Predicate.columns restriction in
  if not (Table.index_covers cand.Scan.idx ~columns:needed) then
    invalid_arg "Sscan.create: index does not cover the restriction";
  {
    table;
    meter;
    idx = cand.Scan.idx;
    restriction;
    cursor = Btree.multi_cursor cand.Scan.idx.Table.tree meter cand.Scan.ranges;
    delivered = 0;
  }

let step t =
  (* [multi_next] touches leaves before advancing and opens range
     cursors before consuming the range, so a faulted quantum is
     retryable in place. *)
  match Btree.multi_next t.cursor with
  | exception Fault.Injected f -> Scan.Failed f
  | None -> Scan.Done
  | Some (key, rid) ->
      let row = Scan.synthetic_row t.table t.idx key in
      if Predicate.eval t.restriction (Table.schema t.table) row then begin
        t.delivered <- t.delivered + 1;
        Scan.Deliver (rid, row)
      end
      else Scan.Continue

let cursor t = Scan.cursor_of_step ~cost:(fun () -> Cost.total t.meter) (fun () -> step t)
let meter t = t.meter
let delivered t = t.delivered
let index_name t = t.idx.Table.idx_name

open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_rid
open Rdb_storage
module Dynarray = Rdb_util.Dynarray

type config = {
  switch_ratio : float;
  scan_cost_cap : float;
  check_every : int;
  memory_budget : int;
  simultaneous : bool;
  dynamic : bool;
  filter_only : bool;
  initial_guaranteed_best : float option;
}

let default_config =
  {
    switch_ratio = 0.95;
    scan_cost_cap = 0.25;
    check_every = 32;
    memory_budget = 4096;
    simultaneous = false;
    dynamic = true;
    filter_only = false;
    initial_guaranteed_best = None;
  }

type outcome = Rid_list of Rid.t array | Recommend_tscan of string

type scan_state = {
  cand : Scan.candidate;
  cursor : Btree.multi_cursor;
  list : Rid_list.t;
  mutable accepted : int;
  mutable scanned : int;
  start_cost : float;
  mutable spill_logged : bool;
}

(* Where a fault surfaced, for [quarantine]: a running scan (primary
   or secondary), or the completed list read in [decide_final]. *)
type fault_site = Site_scan of scan_state * bool | Site_final

and t = {
  table : Table.t;
  meter : Cost.t;
  cfg : config;
  trace : Trace.t;
  mutable fault_site : fault_site option;
  mutable queue : Scan.candidate list;
  mutable primary : scan_state option;
  mutable secondary : scan_state option;
  mutable flip : bool;
  mutable prev_filter : Filter.t option;
  mutable completed : Rid_list.t option;
  mutable completed_count : int;
  mutable completed_name : string;
  tscan_cost : float;
  mutable g : float;
  mutable finished : outcome option;
  borrow_q : Rid.t Dynarray.t;
  mutable borrow_pos : int;
  mutable n_completed : int;
  mutable n_discarded : int;
}

let create table meter cfg trace ~candidates =
  let tscan_cost =
    match cfg.initial_guaranteed_best with
    | Some g -> g
    | None -> Cost_model.tscan_cost table
  in
  {
    table;
    meter;
    cfg;
    trace;
    fault_site = None;
    queue = candidates;
    primary = None;
    secondary = None;
    flip = false;
    prev_filter = None;
    completed = None;
    completed_count = 0;
    completed_name = "";
    tscan_cost;
    g = tscan_cost;
    finished = None;
    borrow_q = Dynarray.create ();
    borrow_pos = 0;
    n_completed = 0;
    n_discarded = 0;
  }

let idx_name st = st.cand.Scan.idx.Table.idx_name

let retrieval_cost t list_count (list : Rid_list.t option) =
  let readback =
    match list with
    | Some l when Rid_list.tier l = Rid_list.Spilled ->
        (* Reading a spilled list back costs its blocks. *)
        float_of_int ((list_count / 1024) + 1) *. Cost.default_weights.Cost.physical_read
    | _ -> 0.0
  in
  Cost_model.rid_fetch_cost t.table ~k:list_count +. readback

let new_scan t cand =
  Trace.emit t.trace (Trace.Scan_started { index = cand.Scan.idx.Table.idx_name });
  {
    cand;
    cursor = Btree.multi_cursor cand.Scan.idx.Table.tree t.meter cand.Scan.ranges;
    list = Rid_list.create ~memory_budget:t.cfg.memory_budget (Table.pool t.table) t.meter;
    accepted = 0;
    scanned = 0;
    start_cost = Cost.total t.meter;
    spill_logged = false;
  }

(* Would scanning this candidate cost more than just performing the
   guaranteed best retrieval?  Initial-stage style pre-skip. *)
let worth_scanning t cand =
  Cost_model.index_scan_cost cand.Scan.idx ~entries:cand.Scan.est <= t.g

let ambiguous_order a b =
  (* Estimates within a factor of 4 of each other: §6's case where the
     prearranged order is "optimal only with some probability". *)
  let ea = Float.max 1.0 a.Scan.est and eb = Float.max 1.0 b.Scan.est in
  eb /. ea < 4.0

let finish t outcome =
  (match outcome with
  | Recommend_tscan reason -> Trace.emit t.trace (Trace.Use_tscan { reason })
  | Rid_list _ -> ());
  t.finished <- Some outcome;
  `Finished outcome

let decide_final t =
  match t.completed with
  | None -> finish t (Recommend_tscan "no index produced a competitive RID list")
  | Some list ->
      let fetch = retrieval_cost t t.completed_count (Some list) in
      if t.cfg.filter_only || fetch <= t.tscan_cost then
        finish t (Rid_list (Rid_list.to_sorted_array list))
      else
        finish t
          (Recommend_tscan
             (Printf.sprintf "final list of %d RIDs costs %.1f vs Tscan %.1f"
                t.completed_count fetch t.tscan_cost))

let discard_scan t st reason =
  Trace.emit t.trace (Trace.Scan_discarded { index = idx_name st; reason });
  Rid_list.destroy st.list;
  t.n_discarded <- t.n_discarded + 1

(* The winner's list becomes the new completed intersection; the
   running loser (if any) is refiltered in memory and continues. *)
let complete_scan t st =
  Trace.emit t.trace
    (Trace.Scan_completed { index = idx_name st; kept = st.accepted; scanned = st.scanned });
  (match t.completed with Some old -> Rid_list.destroy old | None -> ());
  let filter = Rid_list.filter st.list in
  t.completed <- Some st.list;
  t.completed_count <- Rid_list.count st.list;
  t.completed_name <- idx_name st;
  t.prev_filter <- Some filter;
  t.g <- Float.min t.g (retrieval_cost t t.completed_count t.completed);
  t.n_completed <- t.n_completed + 1;
  (* Promote / refilter the other running scan. *)
  let other =
    match (t.primary, t.secondary) with
    | Some p, _ when p != st -> Some p
    | _, Some s when s != st -> Some s
    | _ -> None
  in
  t.primary <- None;
  t.secondary <- None;
  (match other with
  | None -> ()
  | Some o -> (
      Trace.emit t.trace (Trace.Simultaneous_winner { index = idx_name st });
      (* Refilter o's in-memory partial list against the new filter. *)
      let fresh = Rid_list.create ~memory_budget:t.cfg.memory_budget (Table.pool t.table) t.meter in
      match
        Rid_list.iter_unordered o.list (fun rid ->
            Cost.charge_cpu t.meter 1;
            if Filter.mem filter rid then Rid_list.add fresh rid)
      with
      | exception Fault.Injected f ->
          (* The loser's partial list (or the refiltered copy) faulted
             mid-refilter.  The winner has already completed, so the
             competition loses nothing by dropping the loser outright —
             the fault is absorbed here and never escapes the quantum. *)
          Rid_list.destroy fresh;
          Trace.emit t.trace
            (Trace.Index_quarantined { index = idx_name o; fault = Fault.describe f });
          discard_scan t o (Fault.describe f)
      | () ->
          Rid_list.destroy o.list;
          let o' =
            { o with list = fresh; accepted = Rid_list.count fresh }
          in
          t.primary <- Some o'));
  if t.completed_count = 0 then begin
    (* Empty intersection: shortcut the whole retrieval (§6). *)
    (match t.primary with
    | Some p ->
        discard_scan t p "intersection already empty";
        t.primary <- None
    | None -> ());
    ignore (finish t (Rid_list [||]))
  end

(* Competition criteria (§6).

   Two-stage: project the final RID-list retrieval cost from the
   current list and scan progress.  A scan is discarded when even the
   *continuation* cannot beat the guaranteed best: the projected list,
   optimistically shrunk by the remaining candidates' selectivities
   (independence assumption), plus the scan work still to be paid,
   approaches g.  With no candidates left this reduces to the paper's
   literal criterion — the projected retrieval cost against g. *)
let check_competition t st =
  let progress =
    float_of_int st.scanned /. Float.max st.cand.Scan.est (float_of_int (st.scanned + 1))
  in
  let projected_count =
    if progress <= 0.0 then float_of_int st.accepted
    else float_of_int st.accepted /. progress
  in
  let card = float_of_int (Int.max 1 (Table.row_count t.table)) in
  let optimism =
    List.fold_left
      (fun acc c -> acc *. Float.min 1.0 (c.Scan.est /. card))
      1.0 t.queue
  in
  let optimistic_count = projected_count *. optimism in
  let future_scan_cost =
    let this_rest =
      Cost_model.index_scan_cost st.cand.Scan.idx
        ~entries:(Float.max 0.0 (st.cand.Scan.est -. float_of_int st.scanned))
    in
    List.fold_left
      (fun acc c -> acc +. Cost_model.index_scan_cost c.Scan.idx ~entries:c.Scan.est)
      this_rest t.queue
  in
  let projected_cost =
    Cost_model.rid_fetch_cost t.table ~k:(int_of_float (ceil optimistic_count))
    +. future_scan_cost
  in
  if projected_cost >= t.cfg.switch_ratio *. t.g then
    Some
      (Printf.sprintf
         "projected retrieval %.1f approaches guaranteed best %.1f (two-stage)"
         projected_cost t.g)
  else begin
    (* Direct competition: the scan's own cost is capped at a
       proportion of the guaranteed best — but only once the scan has
       overrun its estimate (the remaining-cost term above already
       bounds scans that are merely long; abandoning a productive scan
       near completion would be sunk-cost reasoning). *)
    let scan_cost = Cost.total t.meter -. st.start_cost in
    let overrun = float_of_int st.scanned > 2.0 *. Float.max st.cand.Scan.est 64.0 in
    if overrun && scan_cost > t.cfg.scan_cost_cap *. t.g then
      Some
        (Printf.sprintf
           "scan cost %.1f exceeds %.0f%% of guaranteed best %.1f after overrunning its             estimate (direct)"
           scan_cost
           (100.0 *. t.cfg.scan_cost_cap)
           t.g)
    else None
  end

let start_scans t =
  (* Pop candidates, pre-skipping those whose whole scan would cost
     more than the guaranteed best retrieval. *)
  let rec pop () =
    match t.queue with
    | [] -> None
    | cand :: rest ->
        t.queue <- rest;
        (* Pre-skip only on *exact* estimates: an inexact estimate is
           precisely what competition exists to distrust — starting the
           scan costs at most one check quantum before the two-stage
           criterion can kill it. *)
        if (not t.cfg.dynamic) || (not cand.Scan.est_exact) || worth_scanning t cand then
          Some cand
        else begin
          Trace.emit t.trace
            (Trace.Scan_discarded
               {
                 index = cand.Scan.idx.Table.idx_name;
                 reason =
                   Printf.sprintf "estimated scan cost exceeds guaranteed best %.1f" t.g;
               });
          t.n_discarded <- t.n_discarded + 1;
          pop ()
        end
  in
  match pop () with
  | None -> false
  | Some cand ->
      t.primary <- Some (new_scan t cand);
      (if t.cfg.simultaneous then begin
         match t.queue with
         | next :: rest when ambiguous_order cand next && worth_scanning t next ->
             t.queue <- rest;
             t.secondary <- Some (new_scan t next);
             Trace.emit t.trace
               (Trace.Simultaneous_started
                  {
                    primary = cand.Scan.idx.Table.idx_name;
                    secondary = next.Scan.idx.Table.idx_name;
                  })
         | _ -> ()
       end);
      true

let advance_scan t st ~is_secondary =
  match Btree.multi_next st.cursor with
  | None ->
      complete_scan t st;
      `Scan_over
  | Some (key, rid) ->
      st.scanned <- st.scanned + 1;
      Cost.charge_cpu t.meter 1;
      let keep =
        Predicate.eval_maybe st.cand.Scan.residual (Table.schema t.table)
          (Scan.synthetic_row t.table st.cand.Scan.idx key)
        && match t.prev_filter with Some f -> Filter.mem f rid | None -> true
      in
      if keep then begin
        Rid_list.add st.list rid;
        st.accepted <- st.accepted + 1;
        Dynarray.push t.borrow_q rid
      end;
      let abandoned =
        if (not st.spill_logged) && Rid_list.tier st.list = Rid_list.Spilled then begin
          st.spill_logged <- true;
          Trace.emit t.trace (Trace.List_spilled { index = idx_name st; at = st.accepted });
          if is_secondary then begin
            (* Simultaneous scanning must not outgrow the memory buffer:
               drop the secondary, its candidate returns to the queue. *)
            discard_scan t st "simultaneous scan exceeded memory buffer";
            t.secondary <- None;
            t.queue <- st.cand :: t.queue;
            true
          end
          else false
        end
        else false
      in
      if
        (not abandoned)
        && t.cfg.dynamic
        && st.scanned mod t.cfg.check_every = 0
        && t.finished = None
      then begin
        match check_competition t st with
        | None -> ()
        | Some reason ->
            discard_scan t st reason;
            if is_secondary then t.secondary <- None
            else begin
              t.primary <- None;
              (* Promote the secondary, if any. *)
              match t.secondary with
              | Some s ->
                  t.primary <- Some s;
                  t.secondary <- None
              | None -> ()
            end
      end;
      `Scanning

let rec step t =
  match t.finished with
  | Some o -> `Finished o
  | None -> (
      match (t.primary, t.secondary) with
      | None, None -> (
          if start_scans t then `Working
          else
            match decide_final t with
            | exception Fault.Injected f ->
                (* Reading the completed list back faulted.  The list
                   position is untouched, so a retry re-reads it; a
                   quarantine drops it and the decision degrades to
                   Recommend_tscan. *)
                t.fault_site <- Some Site_final;
                `Faulted f
            | r -> r)
      | Some p, None -> (
          match advance_scan t p ~is_secondary:false with
          | exception Fault.Injected f ->
              t.fault_site <- Some (Site_scan (p, false));
              `Faulted f
          | _ -> if t.finished = None then `Working else step t)
      | Some p, Some s -> (
          (* Equal-speed interleave.  [flip] toggles only after a
             successful quantum: a faulted advance is retried on the
             same scan. *)
          let target, is_secondary = if t.flip then (s, true) else (p, false) in
          match advance_scan t target ~is_secondary with
          | exception Fault.Injected f ->
              t.fault_site <- Some (Site_scan (target, is_secondary));
              `Faulted f
          | _ ->
              t.flip <- not t.flip;
              if t.finished = None then `Working else step t)
      | None, Some s ->
          (* Primary was discarded; promote. *)
          t.primary <- Some s;
          t.secondary <- None;
          `Working)

(* Non-retriable fault at the recorded site: drop the faulting party
   and let the competition continue — structurally the same move as a
   §6 competitive discard, with a fault for a reason. *)
let quarantine t f =
  match t.fault_site with
  | None -> ()
  | Some site -> (
      t.fault_site <- None;
      match site with
      | Site_final ->
          (match t.completed with Some l -> Rid_list.destroy l | None -> ());
          t.completed <- None;
          t.completed_count <- 0;
          t.completed_name <- "";
          (* [g] may have been lowered by the now-unreadable list;
             restore the only guarantee still standing. *)
          t.g <- t.tscan_cost
      | Site_scan (st, is_secondary) ->
          Trace.emit t.trace
            (Trace.Index_quarantined { index = idx_name st; fault = Fault.describe f });
          discard_scan t st (Fault.describe f);
          if is_secondary then t.secondary <- None
          else begin
            t.primary <- None;
            match t.secondary with
            | Some s ->
                t.primary <- Some s;
                t.secondary <- None
            | None -> ()
          end)

let faulted_scan t =
  match t.fault_site with
  | Some (Site_scan (st, _)) -> Some (idx_name st)
  | _ -> None

let outcome t = t.finished

(* Row-less cursor: Jscan produces a RID list (or a recommendation)
   through [outcome]; faults surface as batch status so the shared
   driver's policy decides between retry and quarantine. *)
let cursor t =
  Scan.cursor_of_step
    ~cost:(fun () -> Cost.total t.meter)
    (fun () ->
      match step t with
      | `Working -> Scan.Continue
      | `Finished _ -> Scan.Done
      | `Faulted f -> Scan.Failed f)

let run t =
  let policy =
    Tactic.Policy.(
      seal (stack [ retry_transient; absorb_with ~name:"quarantine" (quarantine t) ]))
  in
  let d = Driver.make (cursor t) policy in
  (match Driver.drain d ~budget:infinity ~on_rows:(fun _ -> ()) with
  | Ok () -> ()
  | Error _ -> (* the quarantine rung absorbs, never stops *) assert false);
  match t.finished with Some o -> o | None -> assert false

let borrow t =
  if t.borrow_pos < Dynarray.length t.borrow_q then begin
    let rid = Dynarray.get t.borrow_q t.borrow_pos in
    t.borrow_pos <- t.borrow_pos + 1;
    Some rid
  end
  else None

let guaranteed_best t = t.g
let completed_scans t = t.n_completed
let discarded_scans t = t.n_discarded
let meter t = t.meter

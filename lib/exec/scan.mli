(** Common vocabulary of steppable scans.

    Every strategy advances by small quanta so the competition
    controller can interleave foreground and background work at
    proportional speeds (§3, §7).  One [step] does O(1) work: examine
    one index entry, one heap record, or one RID. *)

open Rdb_btree
open Rdb_data
open Rdb_engine

type step =
  | Deliver of Rid.t * Row.t  (** a qualifying row *)
  | Continue  (** worked, nothing to deliver yet *)
  | Done  (** exhausted *)
  | Failed of Rdb_storage.Fault.failure
      (** the quantum's block access faulted; the scan's position is
          unchanged, so stepping again retries the same access (the
          degradation policies in [Rdb_core.Retrieval] decide whether
          to retry, quarantine, fall back, or abort) *)

type candidate = {
  idx : Table.index;
  ranges : Btree.range list;
      (** disjoint ranges in key order (one per IN-list value, else a
          single range) *)
  residual : Predicate.t;  (** restriction part the ranges don't cover *)
  est : float;  (** estimated in-range entries *)
  est_exact : bool;
}

val synthetic_row : Table.t -> Table.index -> Btree.key -> Row.t
(** A schema-width row with the index key columns filled in and NULL
    elsewhere (for index-only evaluation and delivery). *)

(** {1 Batch-quantum cursors}

    The uniform execution interface: every strategy exposes a
    {!cursor}, and exactly one generic driver ({!Rdb_exec.Driver})
    pumps it.  A batch runs whole steps until the charged cost reaches
    [budget] (checked {e before} each step, so the first step always
    runs and a single expensive step may overshoot), then yields the
    rows it delivered.  [budget = 0.] therefore reproduces the
    one-step-per-quantum protocol exactly; larger budgets only
    coarsen {e when} control returns, never what is delivered, in
    what order, or what is charged — batching amortizes per-step
    dispatch and buffer-pool residency probes, nothing else. *)

type status =
  | More  (** budget (or step cap) reached; pump again *)
  | Exhausted  (** the scan completed during this batch *)
  | Faulted of Rdb_storage.Fault.failure
      (** the batch's last step faulted with positions unchanged;
          rows delivered by earlier steps of the batch are still in
          [rows] and must be consumed before any fallback runs *)

type batch = {
  rows : (Rid.t * Row.t) list;  (** in delivery order *)
  cost : float;  (** cost actually charged during the batch *)
  steps : int;  (** steps taken, including a final faulted one *)
  status : status;
}

type cursor = { next_batch : budget:float -> batch }

val cursor_of_step :
  cost:(unit -> float) ->
  ?max_steps:int ->
  ?on_yield:(unit -> unit) ->
  (unit -> step) ->
  cursor
(** Lift a step function into a cursor.  [cost ()] reads the charged
    total the budget is clocked against; [max_steps] (default
    unlimited) additionally caps steps per batch (raises
    [Invalid_argument] if < 1); [on_yield] runs on every batch
    boundary — the hook cursors use to invalidate page-handle caches
    whose validity window is one batch. *)

(** Common vocabulary of steppable scans.

    Every strategy advances by small quanta so the competition
    controller can interleave foreground and background work at
    proportional speeds (§3, §7).  One [step] does O(1) work: examine
    one index entry, one heap record, or one RID. *)

open Rdb_btree
open Rdb_data
open Rdb_engine

type step =
  | Deliver of Rid.t * Row.t  (** a qualifying row *)
  | Continue  (** worked, nothing to deliver yet *)
  | Done  (** exhausted *)
  | Failed of Rdb_storage.Fault.failure
      (** the quantum's block access faulted; the scan's position is
          unchanged, so stepping again retries the same access (the
          degradation policies in [Rdb_core.Retrieval] decide whether
          to retry, quarantine, fall back, or abort) *)

type candidate = {
  idx : Table.index;
  ranges : Btree.range list;
      (** disjoint ranges in key order (one per IN-list value, else a
          single range) *)
  residual : Predicate.t;  (** restriction part the ranges don't cover *)
  est : float;  (** estimated in-range entries *)
  est_exact : bool;
}

val synthetic_row : Table.t -> Table.index -> Btree.key -> Row.t
(** A schema-width row with the index key columns filled in and NULL
    elsewhere (for index-only evaluation and delivery). *)

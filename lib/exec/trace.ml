module Dynarray = Rdb_util.Dynarray

type event =
  | Feedback_applied of { index : string; raw : float; corrected : float }
  | Estimated of { index : string; estimate : float; exact : bool; nodes : int }
  | Empty_range of { index : string }
  | Shortcut_estimation of { index : string; estimate : float }
  | Tactic_chosen of { tactic : string; reason : string }
  | Scan_started of { index : string }
  | Scan_discarded of { index : string; reason : string }
  | Scan_completed of { index : string; kept : int; scanned : int }
  | List_spilled of { index : string; at : int }
  | Simultaneous_started of { primary : string; secondary : string }
  | Simultaneous_winner of { index : string }
  | Use_tscan of { reason : string }
  | Foreground_stopped of { reason : string }
  | Background_stopped of { reason : string }
  | Final_stage of { rids : int; filtered_delivered : int }
  | Retrieval_done of { rows : int; cost : float }
  | Fault_detected of { site : string; fault : string }
  | Fault_retry of { site : string; attempt : int; penalty : int }
  | Index_quarantined of { index : string; fault : string }
  | Fallback_tscan of { reason : string }
  | Query_aborted of { fault : string }
  | Quota_exceeded of { spent : float; quota : float }
  | Deadline_exceeded of { spent : float; deadline : float }
  | Span_begin of { span : string }
      (** span-style tracing: a named phase (plan, execute, an arm of a
          competition) opened; the matching [Span_end] carries its
          actuals *)
  | Span_end of { span : string; cost : float; rows : int }
      (** the phase closed after charging [cost] units and delivering
          [rows] rows — the per-node "actual" that EXPLAIN ANALYZE
          prints next to the estimates *)
  | Health_transition of { structure : string; from_ : string; to_ : string; reason : string }
      (** a storage structure moved through the health-state machine *)
  | Repair_started of { index : string }
  | Repair_done of { index : string; entries : int; cost : float; ok : bool }
  | Crash of { epoch : int; tick : int; lost : int }
  | Orphan_discarded of { index : string; side_file : int }
  | Quarantine_restored of { structure : string; escalations : int }
  | Rebuild_resubmitted of { index : string }
  | Reissued of { label : string; epoch : int }

type t = event Dynarray.t

let create () = Dynarray.create ()
let emit t e = Dynarray.push t e
let events t = Dynarray.to_list t

let count t pred = Dynarray.fold_left (fun acc e -> if pred e then acc + 1 else acc) 0 t

let event_to_string = function
  | Feedback_applied { index; raw; corrected } ->
      Printf.sprintf "feedback on %s: raw estimate ~%.0f corrected to ~%.0f (%.2fx)" index
        raw corrected
        (corrected /. Float.max 1e-9 raw)
  | Estimated { index; estimate; exact; nodes } ->
      Printf.sprintf "estimate %s ~ %.0f rids%s (%d node reads)" index estimate
        (if exact then " (exact)" else "")
        nodes
  | Empty_range { index } -> Printf.sprintf "empty range on %s: end-of-data at once" index
  | Shortcut_estimation { index; estimate } ->
      Printf.sprintf "short range on %s (~%.0f rids): estimation stopped early" index
        estimate
  | Tactic_chosen { tactic; reason } -> Printf.sprintf "tactic %s (%s)" tactic reason
  | Scan_started { index } -> Printf.sprintf "scan %s started" index
  | Scan_discarded { index; reason } -> Printf.sprintf "scan %s DISCARDED: %s" index reason
  | Scan_completed { index; kept; scanned } ->
      Printf.sprintf "scan %s completed: %d/%d rids kept" index kept scanned
  | List_spilled { index; at } -> Printf.sprintf "rid list of %s spilled at %d rids" index at
  | Simultaneous_started { primary; secondary } ->
      Printf.sprintf "simultaneous scan of %s and %s" primary secondary
  | Simultaneous_winner { index } -> Printf.sprintf "simultaneous winner: %s" index
  | Use_tscan { reason } -> Printf.sprintf "switch to Tscan: %s" reason
  | Foreground_stopped { reason } -> Printf.sprintf "foreground stopped: %s" reason
  | Background_stopped { reason } -> Printf.sprintf "background stopped: %s" reason
  | Final_stage { rids; filtered_delivered } ->
      Printf.sprintf "final stage: %d rids (%d already delivered skipped)" rids
        filtered_delivered
  | Retrieval_done { rows; cost } ->
      Printf.sprintf "retrieval done: %d rows, cost %.2f" rows cost
  | Fault_detected { site; fault } -> Printf.sprintf "FAULT at %s: %s" site fault
  | Fault_retry { site; attempt; penalty } ->
      Printf.sprintf "retry %d at %s (backoff penalty %d reads)" attempt site penalty
  | Index_quarantined { index; fault } ->
      Printf.sprintf "index %s QUARANTINED: %s" index fault
  | Fallback_tscan { reason } -> Printf.sprintf "fallback to Tscan: %s" reason
  | Query_aborted { fault } -> Printf.sprintf "query ABORTED: %s" fault
  | Quota_exceeded { spent; quota } ->
      Printf.sprintf "cost quota exceeded: %.2f spent of %.2f allowed" spent quota
  | Deadline_exceeded { spent; deadline } ->
      Printf.sprintf "cost deadline exceeded: %.2f spent of %.2f allowed" spent deadline
  | Span_begin { span } -> Printf.sprintf "span %s begin" span
  | Span_end { span; cost; rows } ->
      Printf.sprintf "span %s end (cost %.2f, rows %d)" span cost rows
  | Health_transition { structure; from_; to_; reason } ->
      Printf.sprintf "health %s: %s -> %s (%s)" structure from_ to_ reason
  | Repair_started { index } -> Printf.sprintf "repair of %s started" index
  | Repair_done { index; entries; cost; ok } ->
      Printf.sprintf "repair of %s %s: %d entries, cost %.2f" index
        (if ok then "done" else "FAILED")
        entries cost
  | Crash { epoch; tick; lost } ->
      Printf.sprintf "CRASH in epoch %d at grant %d (%d submissions lost)" epoch tick
        lost
  | Orphan_discarded { index; side_file } ->
      Printf.sprintf "recovery: discarded orphan side tree of %s (file %d)" index
        side_file
  | Quarantine_restored { structure; escalations } ->
      Printf.sprintf "recovery: restored quarantine of %s (escalations %d)" structure
        escalations
  | Rebuild_resubmitted { index } ->
      Printf.sprintf "recovery: resubmitted rebuild of %s" index
  | Reissued { label; epoch } ->
      Printf.sprintf "recovery: reissued %s in epoch %d" label epoch

let pp fmt t =
  Dynarray.iter (fun e -> Format.fprintf fmt "%s@." (event_to_string e)) t

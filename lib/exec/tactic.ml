(* Tactic combinators (DESIGN.md §17).

   A tactic is a resumable quantum function [unit -> Scan.step]; the
   combinators compose quantum functions the way LCF tacticals compose
   tactics.  Everything here is glue over the step protocol — no block
   access, no cost charging, no trace emission: effects belong to the
   arms (which are closures over strategy state) and to Policy rungs,
   so composing tactics can never change what any arm charges or
   delivers. *)

open Rdb_storage

type t = unit -> Scan.step

let halt () = Scan.Done

let then_ first next =
  let successor = ref None in
  fun () ->
    match !successor with
    | Some tac -> tac ()
    | None -> (
        match first () with
        | Scan.Done ->
            (* The phase switch consumes this quantum: the successor is
               built (its constructor's side effects run exactly once)
               and stepped from the next quantum on. *)
            successor := Some (next ());
            Scan.Continue
        | s -> s)

let orelse tac handler =
  let current = ref tac in
  let switched = ref false in
  fun () ->
    match !current () with
    | Scan.Failed f when not !switched ->
        switched := true;
        current := handler f;
        Scan.Continue
    | s -> s

let race ~choose ~left ~right =
 fun () -> match choose () with `Left -> left () | `Right -> right ()

let preempt probe tac =
  let successor = ref None in
  fun () ->
    match !successor with
    | Some s -> s ()
    | None -> (
        match probe () with
        | Some s ->
            successor := Some s;
            s ()
        | None -> tac ())

let repeat_until pred make =
  let current = ref (make ()) in
  fun () ->
    match !current () with
    | Scan.Done ->
        if pred () then Scan.Done
        else begin
          current := make ();
          Scan.Continue
        end
    | s -> s

let abandon_if cond tac =
  let dead = ref None in
  fun () ->
    match !dead with
    | Some f -> Scan.Failed f
    | None -> (
        match cond () with
        | Some f ->
            dead := Some f;
            Scan.Failed f
        | None -> tac ())

let limit n tac =
  if n < 0 then invalid_arg "Tactic.limit: negative row limit";
  let seen = ref 0 in
  fun () ->
    if !seen >= n then Scan.Done
    else
      match tac () with
      | Scan.Deliver _ as s ->
          incr seen;
          s
      | s -> s

let distinct seen tac () =
  match tac () with
  | Scan.Deliver (rid, _) when Hashtbl.mem seen rid -> Scan.Continue
  | Scan.Deliver (rid, _) as s ->
      Hashtbl.replace seen rid ();
      s
  | s -> s

let with_policy policy inner =
  let d = Driver.make inner policy in
  {
    Scan.next_batch =
      (fun ~budget ->
        let captured =
          ref { Scan.rows = []; cost = 0.0; steps = 0; status = Scan.More }
        in
        let progress = Driver.pump d ~budget ~on_rows:(fun b -> captured := b) in
        let status =
          match progress with
          | Driver.More -> Scan.More
          | Driver.Exhausted -> Scan.Exhausted
          | Driver.Stopped f -> Scan.Faulted f
        in
        { !captured with Scan.status });
  }

module Policy = struct
  type rung = {
    names : string list;
    decide : Fault.failure -> consec:int -> Driver.decision option;
  }

  let rung ~name decide = { names = [ name ]; decide }

  let orelse a b =
    {
      names = a.names @ b.names;
      decide =
        (fun f ~consec ->
          match a.decide f ~consec with
          | Some _ as d -> d
          | None -> b.decide f ~consec);
    }

  let stack = function
    | [] -> invalid_arg "Tactic.Policy.stack: empty ladder"
    | r :: rs -> List.fold_left orelse r rs

  let describe r = String.concat " ⇒ " r.names

  let retry_transient =
    rung ~name:"retry-transient" (fun f ~consec:_ ->
        if Fault.is_transient f then Some Driver.Retry else None)

  let bounded_retry ~limit ~penalize =
    rung
      ~name:(Printf.sprintf "retry(%d)" limit)
      (fun f ~consec ->
        if Fault.is_transient f && consec <= limit then begin
          penalize f ~consec;
          Some Driver.Retry
        end
        else None)

  let absorb_with ~name act =
    rung ~name (fun f ~consec:_ ->
        act f;
        Some Driver.Absorb)

  let give_up ~name = rung ~name (fun _ ~consec:_ -> Some Driver.Stop)

  let seal ?(observe = fun _ ~consec:_ -> ()) r =
    {
      Driver.on_fault =
        (fun f ~consec ->
          observe f ~consec;
          match r.decide f ~consec with
          | Some d -> d
          | None ->
              invalid_arg
                ("Tactic.Policy.seal: no rung decided " ^ Fault.describe f));
    }
end

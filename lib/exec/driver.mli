(** The one generic cursor driver.

    All drive loops — retrieval quanta, union/joint-scan completion
    runs, online repair, session grants — pump {!Scan.cursor}s through
    this module, so consecutive-fault bookkeeping and the
    fault-policy dispatch exist exactly once.  Callers keep the
    policy: what a fault *means* (retry with backoff, quarantine the
    index, fall back to Tscan, abandon the union, fail the repair) is
    strategy knowledge; counting and asking is not. *)

type decision =
  | Retry  (** pump again; the faulted step will be re-attempted *)
  | Absorb
      (** the policy changed course (quarantined / fell back /
          abandoned); the cursor now reflects the new course — keep
          pumping and reset the consecutive-fault count *)
  | Stop  (** give up; surface the failure to the caller *)

type policy = { on_fault : Rdb_storage.Fault.failure -> consec:int -> decision }
(** [consec] is the number of consecutive faults including this one
    (any successful step in between resets the run to zero). *)

type t

val make : Scan.cursor -> policy -> t

val consec_faults : t -> int

type progress =
  | More  (** keep pumping *)
  | Exhausted  (** the cursor completed *)
  | Stopped of Rdb_storage.Fault.failure  (** the policy gave up *)

val pump : t -> budget:float -> on_rows:(Scan.batch -> unit) -> progress
(** One batch: pull [next_batch ~budget], hand the whole batch to
    [on_rows] {e before} running the fault policy (rows delivered
    ahead of a fault must reach the consumer before any fallback
    could redeliver them), then settle the batch status. *)

val drain : t -> budget:float -> on_rows:(Scan.batch -> unit) -> (unit, Rdb_storage.Fault.failure) result
(** Pump to completion.  [Error f] when the policy stopped. *)

val clocked_loop :
  spent:(unit -> float) ->
  budget:float ->
  max_steps:int ->
  stop:(unit -> bool) ->
  step:(unit -> [ `Continue | `Finished ]) ->
  unit
(** The cost-clocked grant loop (session quanta): invoke [step] until
    [stop ()], until charged cost since entry reaches [budget], or
    until [max_steps] invocations.  All bounds are checked before
    each iteration — an already-spent budget grants zero steps. *)

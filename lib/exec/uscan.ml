open Rdb_btree
open Rdb_data
open Rdb_engine
open Rdb_rid
open Rdb_storage

type outcome = Rid_list of Rid.t array | Recommend_tscan of string

type config = { switch_ratio : float; check_every : int; memory_budget : int }

let default_config = { switch_ratio = 0.95; check_every = 32; memory_budget = 4096 }

type scan_state = {
  cand : Scan.candidate;
  cursor : Btree.multi_cursor;
  mutable scanned : int;
  mutable accepted_here : int;
}

type t = {
  table : Table.t;
  meter : Cost.t;
  cfg : config;
  trace : Trace.t;
  mutable queue : Scan.candidate list;
  mutable current : scan_state option;
  union : Rid_list.t;
  mutable accepted : int;
  tscan_cost : float;
  mutable finished : outcome option;
}

let create table meter cfg trace ~disjuncts =
  {
    table;
    meter;
    cfg;
    trace;
    queue = disjuncts;
    current = None;
    union = Rid_list.create ~memory_budget:cfg.memory_budget (Table.pool table) meter;
    accepted = 0;
    tscan_cost = Cost_model.tscan_cost table;
    finished = None;
  }

let finish t outcome =
  (match outcome with
  | Recommend_tscan reason -> Trace.emit t.trace (Trace.Use_tscan { reason })
  | Rid_list _ -> ());
  t.finished <- Some outcome;
  `Finished outcome

(* All-or-nothing competition check: the union cannot drop one
   disjunct, so the alternatives are "finish every scan and fetch the
   union" vs "Tscan now".  Two triggers:

   - certain: the rids already accepted plus the committed remaining
     scan work cost as much as the sequential scan — no projection
     involved, abandoning is safe;
   - projected: when the remaining scan investment is itself a
     significant fraction of the guaranteed best (>= 25%), trust the
     estimates; for cheap remainders we keep scanning instead, because
     a descent estimate can be off by several x and the first-stage
     "investment in uncertainty removal" is low (§3). *)
let check t st =
  let remaining_known =
    List.fold_left
      (fun acc c -> acc +. Cost_model.index_scan_cost c.Scan.idx ~entries:c.Scan.est)
      (Cost_model.index_scan_cost st.cand.Scan.idx
         ~entries:(Float.max 0.0 (st.cand.Scan.est -. float_of_int st.scanned)))
      t.queue
  in
  let certain_cost =
    Cost_model.rid_fetch_cost t.table ~k:t.accepted +. remaining_known
  in
  if certain_cost >= t.cfg.switch_ratio *. t.tscan_cost then
    Some
      (Printf.sprintf "accepted union already costs %.1f vs Tscan %.1f" certain_cost
         t.tscan_cost)
  else if remaining_known >= 0.25 *. t.tscan_cost then begin
    let this_projected =
      let progress =
        float_of_int st.scanned /. Float.max st.cand.Scan.est (float_of_int (st.scanned + 1))
      in
      if progress <= 0.0 then float_of_int st.accepted_here
      else float_of_int st.accepted_here /. progress
    in
    let projected_union =
      float_of_int (t.accepted - st.accepted_here)
      +. this_projected
      +. List.fold_left (fun acc c -> acc +. c.Scan.est) 0.0 t.queue
    in
    let projected_cost =
      Cost_model.rid_fetch_cost t.table ~k:(int_of_float (ceil projected_union))
      +. remaining_known
    in
    if projected_cost >= t.cfg.switch_ratio *. t.tscan_cost then
      Some
        (Printf.sprintf "projected union retrieval %.1f approaches Tscan %.1f"
           projected_cost t.tscan_cost)
    else None
  end
  else None

let rec step t =
  match t.finished with
  | Some o -> `Finished o
  | None -> (
      match t.current with
      | None -> (
          match t.queue with
          | [] ->
              if t.accepted = 0 then finish t (Rid_list [||])
              else begin
                let fetch = Cost_model.rid_fetch_cost t.table ~k:t.accepted in
                if fetch <= t.tscan_cost then
                  match Rid_list.to_sorted_array t.union with
                  | exception Fault.Injected f -> `Faulted f
                  | rids -> finish t (Rid_list rids)
                else
                  finish t
                    (Recommend_tscan
                       (Printf.sprintf "union of %d RIDs costs %.1f vs Tscan %.1f"
                          t.accepted fetch t.tscan_cost))
              end
          | cand :: rest ->
              t.queue <- rest;
              Trace.emit t.trace
                (Trace.Scan_started { index = cand.Scan.idx.Table.idx_name });
              t.current <-
                Some
                  {
                    cand;
                    cursor = Btree.multi_cursor cand.Scan.idx.Table.tree t.meter cand.Scan.ranges;
                    scanned = 0;
                    accepted_here = 0;
                  };
              `Working)
      | Some st -> (
          match Btree.multi_next st.cursor with
          | exception Fault.Injected f ->
              (* Positions are unchanged: the caller retries transient
                 faults by stepping again, or calls [abandon]. *)
              `Faulted f
          | None ->
              Trace.emit t.trace
                (Trace.Scan_completed
                   {
                     index = st.cand.Scan.idx.Table.idx_name;
                     kept = t.accepted;
                     scanned = st.scanned;
                   });
              t.current <- None;
              `Working
          | Some (key, rid) -> (
              st.scanned <- st.scanned + 1;
              Cost.charge_cpu t.meter 1;
              match
                if
                  Predicate.eval_maybe st.cand.Scan.residual (Table.schema t.table)
                    (Scan.synthetic_row t.table st.cand.Scan.idx key)
                then begin
                  Rid_list.add t.union rid;
                  t.accepted <- t.accepted + 1;
                  st.accepted_here <- st.accepted_here + 1
                end
              with
              | exception Fault.Injected f ->
                  (* Spill-write faults are never transient, so the
                     caller abandons; the half-consumed entry is moot. *)
                  `Faulted f
              | () ->
              if st.scanned mod t.cfg.check_every = 0 then begin
                match check t st with
                | Some reason ->
                    Trace.emit t.trace
                      (Trace.Scan_discarded
                         { index = st.cand.Scan.idx.Table.idx_name; reason });
                    Rid_list.destroy t.union;
                    ignore (finish t (Recommend_tscan reason));
                    step t
                | None -> `Working
              end
              else `Working)))

(* A union cannot drop one disjunct — every row is owed — so any
   non-retriable fault abandons the whole arrangement for the
   guaranteed-safe Tscan. *)
let abandon t f =
  if t.finished = None then begin
    Rid_list.destroy t.union;
    ignore
      (finish t
         (Recommend_tscan (Printf.sprintf "union abandoned: %s" (Fault.describe f))))
  end

let outcome t = t.finished

(* Row-less cursor: the union delivers a RID list (or a Tscan
   recommendation) through [outcome], not rows, so every productive
   step maps to [Continue]. *)
let cursor t =
  Scan.cursor_of_step
    ~cost:(fun () -> Cost.total t.meter)
    (fun () ->
      match step t with
      | `Working -> Scan.Continue
      | `Finished _ -> Scan.Done
      | `Faulted f -> Scan.Failed f)

let run t =
  let policy =
    Tactic.Policy.(
      seal (stack [ retry_transient; absorb_with ~name:"abandon" (abandon t) ]))
  in
  let d = Driver.make (cursor t) policy in
  (match Driver.drain d ~budget:infinity ~on_rows:(fun _ -> ()) with
  | Ok () -> ()
  | Error _ -> (* the abandon rung absorbs, never stops *) assert false);
  match t.finished with Some o -> o | None -> assert false

let meter t = t.meter

(** Uscan — union scan over the disjuncts of an OR restriction.

    The paper lists "covering ORs ... of table-wide Boolean
    expressions" as a rich source for extending the tactics (§7,
    Other Tactics); this module implements the natural union dual of
    Jscan: each OR disjunct is served by one index range scan, the
    accepted RIDs accumulate into a single union list, and the final
    stage fetches the deduplicated list.

    Unlike Jscan, a union cannot discard one unproductive scan — every
    disjunct's rows are owed — so the competition is all-or-nothing:
    when the projected union retrieval plus the remaining scan work
    approaches the guaranteed best (Tscan), the whole arrangement is
    abandoned in favour of the sequential scan. *)

open Rdb_data
open Rdb_engine
open Rdb_storage

type outcome =
  | Rid_list of Rid.t array  (** sorted, deduplicated union *)
  | Recommend_tscan of string

type config = {
  switch_ratio : float;  (** abandon threshold vs guaranteed best (0.95) *)
  check_every : int;
  memory_budget : int;
}

val default_config : config

type t

val create :
  Table.t -> Cost.t -> config -> Trace.t -> disjuncts:Scan.candidate list -> t
(** One candidate per OR disjunct; each candidate's [residual] is the
    part of its own disjunct the range does not guarantee (evaluated
    with [eval_maybe] during the scan). *)

val step : t -> [ `Working | `Finished of outcome | `Faulted of Fault.failure ]
(** [`Faulted] leaves positions unchanged: step again to retry a
    transient fault, or call {!abandon}. *)

val abandon : t -> Fault.failure -> unit
(** Non-retriable fault: a union owes every disjunct's rows, so the
    whole arrangement is dropped in favour of [Recommend_tscan]. *)

val cursor : t -> Scan.cursor
(** The union as a row-less batch-quantum cursor: productive steps
    yield no rows (the result is the {!outcome} RID list), faults
    surface as batch status for the driver's policy. *)

val outcome : t -> outcome option
(** [None] until the union finishes (or is abandoned). *)

val run : t -> outcome
(** Drain {!cursor} through the shared driver under the
    [retry-transient ⇒ abandon] {!Tactic.Policy} ladder: transient
    faults retry in place, anything else abandons to
    [Recommend_tscan]. *)

val meter : t -> Cost.t

open Rdb_data
open Rdb_storage
module Dynarray = Rdb_util.Dynarray

type key = Value.t array

type entry = key * Rid.t

(* Prefix-lexicographic: a shorter key equal on its length compares
   equal, so partial keys act as range bounds over composite keys. *)
let compare_key (a : key) (b : key) =
  let n = Int.min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then 0
    else begin
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let compare_entry ((ka, ra) : entry) ((kb, rb) : entry) =
  let c = compare_key ka kb in
  if c <> 0 then c else Rid.compare ra rb

type node = Leaf of leaf | Internal of internal

and leaf = {
  leaf_id : int;
  entries : entry Dynarray.t;
  mutable next : leaf option;
  (* Lazily-maintained content checksum (see Heap_file): [written]
     invalidates, the next cold read under a fault injector recomputes
     or verifies.  Internal nodes carry no checksum: their [total] and
     separators mutate on paths that are not charged as writes, so a
     checksum there would either false-positive or change the seed
     cost profile. *)
  mutable crc : int;
  mutable crc_valid : bool;
}

and internal = {
  node_id : int;
  seps : entry Dynarray.t; (* seps.(i) = minimum entry of children.(i+1) *)
  children : node Dynarray.t;
  mutable total : int;
}

type t = {
  pool : Buffer_pool.t;
  file : int;
  f : int;
  mutable root : node;
  mutable next_block : int;
}

let node_total = function
  | Leaf l -> Dynarray.length l.entries
  | Internal n -> n.total

let node_id = function Leaf l -> l.leaf_id | Internal n -> n.node_id

let fresh_leaf ~leaf_id ~entries ~next =
  { leaf_id; entries; next; crc = Fault.crc_init; crc_valid = false }

let create ?(fanout = 64) pool =
  if fanout < 3 then invalid_arg "Btree.create: fanout < 3";
  let file = Buffer_pool.fresh_file pool in
  Buffer_pool.classify pool ~file Fault.Index;
  let t =
    {
      pool;
      file;
      f = fanout;
      root = Leaf (fresh_leaf ~leaf_id:0 ~entries:(Dynarray.create ()) ~next:None);
      next_block = 1;
    }
  in
  t

let fanout t = t.f
let file_id t = t.file

let fresh_block t =
  let id = t.next_block in
  t.next_block <- id + 1;
  id

let leaf_crc (l : leaf) =
  Dynarray.fold_left
    (fun acc ((k : key), (rid : Rid.t)) ->
      let acc =
        Array.fold_left (fun acc v -> Fault.crc_int acc (Hashtbl.hash v)) acc k
      in
      Fault.crc_int (Fault.crc_int acc rid.page) rid.slot)
    Fault.crc_init l.entries

let audit_leaf t (l : leaf) inj =
  if not l.crc_valid then begin
    l.crc <- leaf_crc l;
    l.crc_valid <- true
  end
  else begin
    if Fault.take_corruption inj ~file:t.file ~index:l.leaf_id then
      l.crc <- Fault.crc_scramble l.crc;
    if leaf_crc l <> l.crc then
      raise
        (Fault.Injected
           { Fault.file = t.file; index = l.leaf_id; class_ = Fault.Index;
             kind = Fault.Corrupt })
  end

let touch t meter node =
  match Buffer_pool.touch_read t.pool meter { file = t.file; index = node_id node } with
  | `Hit -> ()
  | `Miss -> (
      match (node, Buffer_pool.injector t.pool) with
      | Leaf l, Some inj -> audit_leaf t l inj
      | _ -> ())

let written t meter node =
  (match node with Leaf l -> l.crc_valid <- false | Internal _ -> ());
  Buffer_pool.write t.pool meter { file = t.file; index = node_id node }

let cardinality t = node_total t.root

let rec height_of = function
  | Leaf _ -> 1
  | Internal n -> 1 + height_of (Dynarray.get n.children 0)

let height t = height_of t.root

let rec fold_nodes f acc node =
  let acc = f acc node in
  match node with
  | Leaf _ -> acc
  | Internal n -> Dynarray.fold_left (fold_nodes f) acc n.children

let node_count t = fold_nodes (fun acc _ -> acc + 1) 0 t.root

let leaf_count t =
  fold_nodes (fun acc n -> match n with Leaf _ -> acc + 1 | Internal _ -> acc) 0 t.root

let leaf_blocks t =
  List.rev
    (fold_nodes
       (fun acc n -> match n with Leaf l -> l.leaf_id :: acc | Internal _ -> acc)
       [] t.root)

let avg_leaf_entries t =
  let leaves = leaf_count t in
  if leaves = 0 then 0.0 else float_of_int (cardinality t) /. float_of_int leaves

let avg_internal_children t =
  let internals, children =
    fold_nodes
      (fun (i, c) n ->
        match n with
        | Leaf _ -> (i, c)
        | Internal nd -> (i + 1, c + Dynarray.length nd.children))
      (0, 0) t.root
  in
  if internals = 0 then float_of_int (Int.max 1 (cardinality t))
  else float_of_int children /. float_of_int internals

(* --- search helpers ------------------------------------------------ *)

let dyn_lower_bound cmp d x =
  let lo = ref 0 and hi = ref (Dynarray.length d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp (Dynarray.get d mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let dyn_upper_bound cmp d x =
  let lo = ref 0 and hi = ref (Dynarray.length d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp (Dynarray.get d mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child slot an entry belongs to. *)
let child_of_entry (n : internal) e = dyn_upper_bound compare_entry n.seps e

(* --- insertion ------------------------------------------------------ *)

type split = { sep : entry; right : node }

let dyn_insert_at d i x =
  (* Shift-right insert preserving order. *)
  Dynarray.push d x;
  let len = Dynarray.length d in
  let j = ref (len - 1) in
  while !j > i do
    Dynarray.set d !j (Dynarray.get d (!j - 1));
    decr j
  done;
  Dynarray.set d i x

let dyn_remove_at d i =
  let len = Dynarray.length d in
  for j = i to len - 2 do
    Dynarray.set d j (Dynarray.get d (j + 1))
  done;
  (match Dynarray.pop d with Some _ -> () | None -> assert false)

let split_dyn d at =
  let right = Dynarray.create () in
  let len = Dynarray.length d in
  for i = at to len - 1 do
    Dynarray.push right (Dynarray.get d i)
  done;
  Dynarray.truncate d at;
  right

let rec insert_node t meter node e : bool * split option =
  touch t meter node;
  match node with
  | Leaf l ->
      let pos = dyn_lower_bound compare_entry l.entries e in
      if pos < Dynarray.length l.entries && compare_entry (Dynarray.get l.entries pos) e = 0
      then (false, None)
      else begin
        dyn_insert_at l.entries pos e;
        written t meter node;
        if Dynarray.length l.entries <= t.f then (true, None)
        else begin
          let at = Dynarray.length l.entries / 2 in
          let right_entries = split_dyn l.entries at in
          let right =
            fresh_leaf ~leaf_id:(fresh_block t) ~entries:right_entries ~next:l.next
          in
          l.next <- Some right;
          written t meter (Leaf right);
          (true, Some { sep = Dynarray.get right.entries 0; right = Leaf right })
        end
      end
  | Internal n ->
      let i = child_of_entry n e in
      let inserted, split = insert_node t meter (Dynarray.get n.children i) e in
      if inserted then n.total <- n.total + 1;
      (match split with
      | None -> ()
      | Some { sep; right } ->
          dyn_insert_at n.seps i sep;
          dyn_insert_at n.children (i + 1) right;
          written t meter node);
      if Dynarray.length n.children <= t.f then (inserted, None)
      else begin
        (* Split internal: middle separator moves up. *)
        let mid = Dynarray.length n.seps / 2 in
        let up = Dynarray.get n.seps mid in
        let right_seps = split_dyn n.seps (mid + 1) in
        (match Dynarray.pop n.seps with Some _ -> () | None -> assert false);
        let right_children = split_dyn n.children (mid + 1) in
        let right_total =
          Dynarray.fold_left (fun acc c -> acc + node_total c) 0 right_children
        in
        let right =
          { node_id = fresh_block t; seps = right_seps; children = right_children;
            total = right_total }
        in
        n.total <- n.total - right_total;
        written t meter node;
        written t meter (Internal right);
        (inserted, Some { sep = up; right = Internal right })
      end

let insert t meter k rid =
  let inserted, split = insert_node t meter t.root (k, rid) in
  ignore inserted;
  match split with
  | None -> ()
  | Some { sep; right } ->
      let children = Dynarray.create () in
      Dynarray.push children t.root;
      Dynarray.push children right;
      let seps = Dynarray.create () in
      Dynarray.push seps sep;
      let root =
        { node_id = fresh_block t; seps; children;
          total = node_total t.root + node_total right }
      in
      t.root <- Internal root;
      written t meter t.root

(* --- deletion ------------------------------------------------------- *)

let leaf_min t = t.f / 2
let internal_min_children t = (t.f + 1) / 2

let rec delete_node t meter node e : bool =
  touch t meter node;
  match node with
  | Leaf l ->
      let pos = dyn_lower_bound compare_entry l.entries e in
      if pos < Dynarray.length l.entries && compare_entry (Dynarray.get l.entries pos) e = 0
      then begin
        dyn_remove_at l.entries pos;
        written t meter node;
        true
      end
      else false
  | Internal n ->
      let i = child_of_entry n e in
      let child = Dynarray.get n.children i in
      let removed = delete_node t meter child e in
      if removed then begin
        n.total <- n.total - 1;
        rebalance t meter n i
      end;
      removed

and underfull t = function
  | Leaf l -> Dynarray.length l.entries < leaf_min t
  | Internal n -> Dynarray.length n.children < internal_min_children t

and rebalance t meter (n : internal) i =
  let child = Dynarray.get n.children i in
  if underfull t child then begin
    let left = if i > 0 then Some (Dynarray.get n.children (i - 1)) else None in
    let right =
      if i + 1 < Dynarray.length n.children then Some (Dynarray.get n.children (i + 1))
      else None
    in
    let can_lend = function
      | Some (Leaf l) -> Dynarray.length l.entries > leaf_min t
      | Some (Internal m) -> Dynarray.length m.children > internal_min_children t
      | None -> false
    in
    if can_lend right then borrow_right t meter n i
    else if can_lend left then borrow_left t meter n i
    else if right <> None then merge t meter n i
    else if left <> None then merge t meter n (i - 1)
  end

and borrow_right t meter n i =
  match (Dynarray.get n.children i, Dynarray.get n.children (i + 1)) with
  | Leaf l, Leaf r ->
      let e = Dynarray.get r.entries 0 in
      dyn_remove_at r.entries 0;
      Dynarray.push l.entries e;
      Dynarray.set n.seps i (Dynarray.get r.entries 0);
      written t meter (Leaf l);
      written t meter (Leaf r)
  | Internal l, Internal r ->
      let sep = Dynarray.get n.seps i in
      let moved_child = Dynarray.get r.children 0 in
      let moved_total = node_total moved_child in
      dyn_remove_at r.children 0;
      let new_sep = Dynarray.get r.seps 0 in
      dyn_remove_at r.seps 0;
      Dynarray.push l.seps sep;
      Dynarray.push l.children moved_child;
      l.total <- l.total + moved_total;
      r.total <- r.total - moved_total;
      Dynarray.set n.seps i new_sep;
      written t meter (Internal l);
      written t meter (Internal r)
  | _ -> assert false

and borrow_left t meter n i =
  match (Dynarray.get n.children (i - 1), Dynarray.get n.children i) with
  | Leaf l, Leaf r ->
      let e =
        match Dynarray.pop l.entries with Some e -> e | None -> assert false
      in
      dyn_insert_at r.entries 0 e;
      Dynarray.set n.seps (i - 1) e;
      written t meter (Leaf l);
      written t meter (Leaf r)
  | Internal l, Internal r ->
      let sep = Dynarray.get n.seps (i - 1) in
      let moved_child =
        match Dynarray.pop l.children with Some c -> c | None -> assert false
      in
      let moved_total = node_total moved_child in
      let new_sep =
        match Dynarray.pop l.seps with Some s -> s | None -> assert false
      in
      dyn_insert_at r.seps 0 sep;
      dyn_insert_at r.children 0 moved_child;
      l.total <- l.total - moved_total;
      r.total <- r.total + moved_total;
      Dynarray.set n.seps (i - 1) new_sep;
      written t meter (Internal l);
      written t meter (Internal r)
  | _ -> assert false

and merge t meter n i =
  (* Merge child i+1 into child i; drop sep i. *)
  (match (Dynarray.get n.children i, Dynarray.get n.children (i + 1)) with
  | Leaf l, Leaf r ->
      Dynarray.append l.entries r.entries;
      l.next <- r.next;
      written t meter (Leaf l)
  | Internal l, Internal r ->
      Dynarray.push l.seps (Dynarray.get n.seps i);
      Dynarray.append l.seps r.seps;
      Dynarray.append l.children r.children;
      l.total <- l.total + r.total;
      written t meter (Internal l)
  | _ -> assert false);
  dyn_remove_at n.seps i;
  dyn_remove_at n.children (i + 1)

let delete t meter k rid =
  let removed = delete_node t meter t.root (k, rid) in
  (match t.root with
  | Internal n when Dynarray.length n.children = 1 -> t.root <- Dynarray.get n.children 0
  | _ -> ());
  removed

let mem t meter k rid =
  let e = (k, rid) in
  let rec go node =
    touch t meter node;
    match node with
    | Leaf l ->
        let pos = dyn_lower_bound compare_entry l.entries e in
        pos < Dynarray.length l.entries
        && compare_entry (Dynarray.get l.entries pos) e = 0
    | Internal n -> go (Dynarray.get n.children (child_of_entry n e))
  in
  go t.root

(* --- ranges --------------------------------------------------------- *)

type bound = Incl of key | Excl of key | Unbounded

type range = { lo : bound; hi : bound }

let full_range = { lo = Unbounded; hi = Unbounded }

let range_incl lo hi = { lo = Incl lo; hi = Incl hi }

let point_range k = { lo = Incl k; hi = Incl k }

let key_ge_lo bound k =
  match bound with
  | Unbounded -> true
  | Incl lo -> compare_key k lo >= 0
  | Excl lo -> compare_key k lo > 0

let key_le_hi bound k =
  match bound with
  | Unbounded -> true
  | Incl hi -> compare_key k hi <= 0
  | Excl hi -> compare_key k hi < 0

let in_range r k = key_ge_lo r.lo k && key_le_hi r.hi k

(* Leftmost child that may hold an in-range key. *)
let low_child (n : internal) lo =
  match lo with
  | Unbounded -> 0
  | Incl k ->
      (* count separators with sep.key strictly below k *)
      let rec count i =
        if i >= Dynarray.length n.seps then i
        else if compare_key (fst (Dynarray.get n.seps i)) k < 0 then count (i + 1)
        else i
      in
      count 0
  | Excl k ->
      let rec count i =
        if i >= Dynarray.length n.seps then i
        else if compare_key (fst (Dynarray.get n.seps i)) k <= 0 then count (i + 1)
        else i
      in
      count 0

(* --- cursor --------------------------------------------------------- *)

type cursor = {
  tree : t;
  meter : Cost.t;
  range : range;
  mutable leaf : leaf option;
  mutable pos : int;
  mutable served : int;
  mutable exhausted : bool;
}

let descend_to_leaf t meter lo =
  let rec go node =
    touch t meter node;
    match node with
    | Leaf l -> l
    | Internal n -> go (Dynarray.get n.children (low_child n lo))
  in
  go t.root

let cursor t meter range =
  let l = descend_to_leaf t meter range.lo in
  let pos =
    (* First entry satisfying the low bound within this leaf. *)
    let rec find i =
      if i >= Dynarray.length l.entries then i
      else if key_ge_lo range.lo (fst (Dynarray.get l.entries i)) then i
      else find (i + 1)
    in
    find 0
  in
  { tree = t; meter; range; leaf = Some l; pos; served = 0; exhausted = false }

let rec next c =
  if c.exhausted then None
  else begin
    match c.leaf with
    | None ->
        c.exhausted <- true;
        None
    | Some l ->
        if c.pos >= Dynarray.length l.entries then begin
          (* Touch the next leaf *before* advancing: a faulted read
             leaves the cursor at the current leaf's end, so re-calling
             [next] retries the same sibling instead of walking past
             an uncharged, unverified leaf. *)
          (match l.next with
          | Some nl -> touch c.tree c.meter (Leaf nl)
          | None -> ());
          c.leaf <- l.next;
          c.pos <- 0;
          next c
        end
        else begin
          let k, rid = Dynarray.get l.entries c.pos in
          c.pos <- c.pos + 1;
          if not (key_ge_lo c.range.lo k) then next c
          else if key_le_hi c.range.hi k then begin
            Cost.charge_cpu c.meter 1;
            c.served <- c.served + 1;
            Some (k, rid)
          end
          else begin
            c.exhausted <- true;
            None
          end
        end
  end

let consumed c = c.served

(* --- multi-range cursor ---------------------------------------------- *)

type multi_cursor = {
  mtree : t;
  mmeter : Cost.t;
  mutable pending : range list;
  mutable active : cursor option;
  mutable mserved : int;
}

let multi_cursor t meter ranges =
  { mtree = t; mmeter = meter; pending = ranges; active = None; mserved = 0 }

let rec multi_next mc =
  match mc.active with
  | Some c -> (
      match next c with
      | Some e ->
          mc.mserved <- mc.mserved + 1;
          Some e
      | None ->
          mc.active <- None;
          multi_next mc)
  | None -> (
      match mc.pending with
      | [] -> None
      | r :: rest ->
          (* Open the cursor (which descends, and may fault) before
             popping the range, so a retry re-attempts the same range
             rather than losing it. *)
          let c = cursor mc.mtree mc.mmeter r in
          mc.pending <- rest;
          mc.active <- Some c;
          multi_next mc)

let multi_consumed mc = mc.mserved

let iter_range t meter range f =
  let c = cursor t meter range in
  let rec loop () =
    match next c with
    | None -> ()
    | Some (k, rid) ->
        f k rid;
        loop ()
  in
  loop ()

let count_range t meter range =
  let n = ref 0 in
  iter_range t meter range (fun _ _ -> incr n);
  !n

(* --- structural access ---------------------------------------------- *)

type node_ref = node

type node_view =
  | Leaf_view of (key * Rid.t) array
  | Internal_view of key array * node_ref array

let root t = t.root

let view t meter node =
  touch t meter node;
  match node with
  | Leaf l -> Leaf_view (Dynarray.to_array l.entries)
  | Internal n ->
      Internal_view
        (Array.map fst (Dynarray.to_array n.seps), Dynarray.to_array n.children)

let subtree_count _t node = node_total node

(* --- validation ------------------------------------------------------ *)

let self_check t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check node ~is_root ~depth =
    match node with
    | Leaf l ->
        let n = Dynarray.length l.entries in
        if (not is_root) && n < leaf_min t then fail "underfull leaf (%d)" n
        else if n > t.f then fail "overfull leaf (%d)" n
        else begin
          let ok = ref (Ok depth) in
          for i = 1 to n - 1 do
            if
              compare_entry (Dynarray.get l.entries (i - 1)) (Dynarray.get l.entries i)
              >= 0
            then ok := fail "leaf entries out of order"
          done;
          !ok
        end
    | Internal n ->
        let c = Dynarray.length n.children in
        if Dynarray.length n.seps <> c - 1 then fail "sep/children arity mismatch"
        else if (not is_root) && c < internal_min_children t then
          fail "underfull internal (%d)" c
        else if c > t.f then fail "overfull internal (%d)" c
        else begin
          let expected_total =
            Dynarray.fold_left (fun acc ch -> acc + node_total ch) 0 n.children
          in
          if expected_total <> n.total then
            fail "bad total: stored %d actual %d" n.total expected_total
          else begin
            let rec loop i acc_depth =
              if i >= c then Ok acc_depth
              else begin
                match check (Dynarray.get n.children i) ~is_root:false ~depth:(depth + 1) with
                | Error e -> Error e
                | Ok d ->
                    if acc_depth <> -1 && d <> acc_depth then fail "uneven depth"
                    else begin
                      (* separator correctness: first entry of child i is
                         >= sep (i-1) and < sep i *)
                      if i > 0 then begin
                        let sep = Dynarray.get n.seps (i - 1) in
                        let min_e = min_entry (Dynarray.get n.children i) in
                        if compare_entry min_e sep < 0 then fail "separator too large"
                        else loop (i + 1) d
                      end
                      else loop (i + 1) d
                    end
              end
            in
            loop 0 (-1)
          end
        end
  and min_entry = function
    | Leaf l -> Dynarray.get l.entries 0
    | Internal n -> min_entry (Dynarray.get n.children 0)
  in
  match check t.root ~is_root:true ~depth:0 with Ok _ -> Ok () | Error e -> Error e

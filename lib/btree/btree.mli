(** B+-tree index.

    A from-scratch B+-tree over composite {!Rdb_data.Value.t} keys with
    RID postings.  Duplicate keys are supported (entries are unique on
    the (key, rid) pair).  Every node visit is charged to a cost meter
    through the shared buffer pool, so index scans compete for cache
    with data pages — the §3(b,c) uncertainty sources.

    Beyond search/insert/delete/range-cursor, the tree serves as the
    paper's *hierarchical histogram*: {!Estimate} implements the §5
    descent-to-split-node range estimator and {!Sampling} the
    B+-tree random sampling of [OlRo89]/[Ant92]. *)

open Rdb_data
open Rdb_storage

type key = Value.t array

type t

val create : ?fanout:int -> Buffer_pool.t -> t
(** [fanout] is the maximum entries per leaf and maximum children per
    internal node (minimum 3, default 64). *)

val fanout : t -> int
val file_id : t -> int

val compare_key : key -> key -> int
(** Lexicographic; shorter keys compare as prefixes (a shorter key
    equal on its length compares equal), so partial keys can serve as
    range bounds. *)

val compare_entry : key * Rid.t -> key * Rid.t -> int

val cardinality : t -> int
(** Number of (key, rid) entries. *)

val height : t -> int
(** 1 for a tree that is a single leaf. *)

val node_count : t -> int
val leaf_count : t -> int

val leaf_blocks : t -> int list
(** Block indexes of the leaves, left to right — the valid targets for
    a {!Rdb_storage.Fault} corruption plan against this index's
    file. *)

val avg_leaf_entries : t -> float
val avg_internal_children : t -> float

val insert : t -> Cost.t -> key -> Rid.t -> unit
(** Duplicate (key, rid) pairs are ignored. *)

val delete : t -> Cost.t -> key -> Rid.t -> bool
(** Remove the exact (key, rid) entry; [false] if absent. *)

val mem : t -> Cost.t -> key -> Rid.t -> bool

(** {1 Range bounds} *)

type bound = Incl of key | Excl of key | Unbounded

type range = { lo : bound; hi : bound }

val full_range : range
val range_incl : key -> key -> range
val point_range : key -> range

val in_range : range -> key -> bool

(** {1 Cursors} *)

type cursor

val cursor : t -> Cost.t -> range -> cursor
(** Positioned at the first in-range entry; descent nodes are
    charged. *)

val next : cursor -> (key * Rid.t) option
(** Entries in key order; leaf transitions charge one access.  Returns
    [None] past the range end (and keeps returning [None]). *)

val consumed : cursor -> int
(** Entries delivered so far — Jscan's progress measure. *)

(** {2 Multi-range cursors}

    A candidate restriction can map to several disjoint ranges (an
    IN-list on the leading key column).  The multi-cursor drains the
    ranges in the given order; passing them sorted by key keeps the
    overall delivery in index order. *)

type multi_cursor

val multi_cursor : t -> Cost.t -> range list -> multi_cursor
val multi_next : multi_cursor -> (key * Rid.t) option
val multi_consumed : multi_cursor -> int

val iter_range : t -> Cost.t -> range -> (key -> Rid.t -> unit) -> unit

val count_range : t -> Cost.t -> range -> int
(** Exact count by scanning (test/oracle use). *)

(** {1 Internal structure access (estimator, sampler, tests)} *)

type node_view =
  | Leaf_view of (key * Rid.t) array
  | Internal_view of key array * node_ref array

and node_ref

val root : t -> node_ref
val view : t -> Cost.t -> node_ref -> node_view
(** Viewing a node charges one block access. *)

val subtree_count : t -> node_ref -> int
(** Maintained entry count of the subtree (free: stored in the
    parent-side ranking info; used by pseudo-ranked sampling). *)

val self_check : t -> (unit, string) result
(** Validate ordering, fill, linkage and count invariants. *)
